//! End-to-end collective-operation tests.

use mini_mpi::prelude::*;
use mini_mpi::wire::{from_bytes, to_bytes};

fn run(
    world: usize,
    f: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static,
) -> RunReport {
    Runtime::run_native(world, f).unwrap().ok().unwrap()
}

#[test]
fn barrier_all_sizes() {
    for n in [1usize, 2, 3, 5, 8, 13] {
        let report = run(n, |rank| {
            for _ in 0..3 {
                rank.barrier(COMM_WORLD)?;
            }
            Ok(vec![1])
        });
        assert!(report.outputs.iter().all(|o| o == &[1u8]), "n={n}");
    }
}

#[test]
fn bcast_from_every_root() {
    for n in [2usize, 3, 6, 9] {
        for root in [0usize, 1, n - 1] {
            let report = run(n, move |rank| {
                let data: Vec<u64> =
                    if rank.world_rank() == root { vec![17, 23, root as u64] } else { vec![] };
                let got = rank.bcast(COMM_WORLD, root, &data)?;
                assert_eq!(got, vec![17, 23, root as u64]);
                Ok(vec![1])
            });
            assert!(report.outputs.iter().all(|o| o == &[1u8]), "n={n} root={root}");
        }
    }
}

#[test]
fn reduce_sum_min_max() {
    let n = 7;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as i64;
        let sum = rank.reduce(COMM_WORLD, 0, ReduceOp::Sum, &[me, 1])?;
        let mn = rank.reduce(COMM_WORLD, 2, ReduceOp::Min, &[me])?;
        let mx = rank.reduce(COMM_WORLD, 2, ReduceOp::Max, &[me])?;
        let mut out = Vec::new();
        if rank.world_rank() == 0 {
            out = to_bytes(&(sum[0], sum[1]));
        }
        if rank.world_rank() == 2 {
            out = to_bytes(&(mn[0], mx[0]));
        }
        Ok(out)
    });
    let (s, c): (i64, i64) = from_bytes(&report.outputs[0]).unwrap();
    assert_eq!(s, (0..7).sum::<i64>());
    assert_eq!(c, 7);
    let (mn, mx): (i64, i64) = from_bytes(&report.outputs[2]).unwrap();
    assert_eq!((mn, mx), (0, 6));
}

#[test]
fn allreduce_everyone_agrees() {
    let n = 6;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as f64;
        let got = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[me, 2.0 * me])?;
        Ok(to_bytes(&(got[0], got[1])))
    });
    let expect: f64 = (0..6).map(|i| i as f64).sum();
    for out in &report.outputs {
        let (a, b): (f64, f64) = from_bytes(out).unwrap();
        assert_eq!(a, expect);
        assert_eq!(b, 2.0 * expect);
    }
}

#[test]
fn gather_and_allgather() {
    let n = 5;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as u32;
        let parts = rank.gather(COMM_WORLD, 1, &[me, me + 100])?;
        if rank.world_rank() == 1 {
            for (i, p) in parts.iter().enumerate() {
                assert_eq!(p, &[i as u32, i as u32 + 100]);
            }
        } else {
            assert!(parts.is_empty());
        }
        let all = rank.allgather(COMM_WORLD, &[me * 2])?;
        let flat: Vec<u32> = all.into_iter().flatten().collect();
        assert_eq!(flat, vec![0, 2, 4, 6, 8]);
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1u8]));
}

#[test]
fn scatter_distributes_parts() {
    let n = 4;
    let report = run(n, move |rank| {
        let parts: Vec<Vec<u64>> = if rank.world_rank() == 0 {
            (0..4).map(|i| vec![i as u64 * 11]).collect()
        } else {
            Vec::new()
        };
        let mine = rank.scatter(COMM_WORLD, 0, &parts)?;
        assert_eq!(mine, vec![rank.world_rank() as u64 * 11]);
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1u8]));
}

#[test]
fn alltoall_personalized() {
    let n = 4;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as u64;
        // parts[j] = [me * 10 + j]
        let parts: Vec<Vec<u64>> = (0..4).map(|j| vec![me * 10 + j as u64]).collect();
        let got = rank.alltoall(COMM_WORLD, &parts)?;
        for (j, p) in got.iter().enumerate() {
            assert_eq!(p, &[j as u64 * 10 + me]);
        }
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1u8]));
}

#[test]
fn comm_split_even_odd() {
    let n = 6;
    let report = run(n, move |rank| {
        let me = rank.world_rank();
        let color = (me % 2) as u32;
        let sub = rank.comm_split(COMM_WORLD, color, me as i64)?;
        assert_eq!(rank.comm_size(sub)?, 3);
        assert_eq!(rank.comm_rank(sub)?, me / 2);
        // Collectives work on the sub-communicator.
        let sum = rank.allreduce(sub, ReduceOp::Sum, &[me as u64])?;
        let expect: u64 = if color == 0 { 2 + 4 } else { 1 + 3 + 5 };
        assert_eq!(sum[0], expect);
        Ok(to_bytes(&sub.0))
    });
    // Even ranks share one comm id, odd ranks another, and they differ.
    let even: u64 = from_bytes(&report.outputs[0]).unwrap();
    let odd: u64 = from_bytes(&report.outputs[1]).unwrap();
    assert_ne!(even, odd);
    for i in (0..6).step_by(2) {
        assert_eq!(from_bytes::<u64>(&report.outputs[i]).unwrap(), even);
    }
}

#[test]
fn comm_split_ids_deterministic_across_runs() {
    let get_ids = || {
        let report = run(4, |rank| {
            let sub = rank.comm_split(COMM_WORLD, (rank.world_rank() % 2) as u32, 0)?;
            let sub2 = rank.comm_split(COMM_WORLD, 0, 0)?;
            Ok(to_bytes(&(sub.0, sub2.0)))
        });
        report.outputs.iter().map(|o| from_bytes::<(u64, u64)>(o).unwrap()).collect::<Vec<_>>()
    };
    assert_eq!(get_ids(), get_ids());
}

#[test]
fn point_to_point_on_subcommunicator() {
    let n = 4;
    let report = run(n, move |rank| {
        let me = rank.world_rank();
        let sub = rank.comm_split(COMM_WORLD, (me / 2) as u32, me as i64)?;
        // Within each pair, comm rank 0 sends to comm rank 1.
        if rank.comm_rank(sub)? == 0 {
            rank.send(sub, 1, 5, &[me as u64])?;
            Ok(vec![])
        } else {
            let (v, st) = rank.recv::<u64>(sub, 0u32, 5)?;
            // Comm rank 0 of my pair is world rank me-1.
            assert_eq!(st.src, RankId(me as u32 - 1));
            Ok(to_bytes(&v[0]))
        }
    });
    assert_eq!(from_bytes::<u64>(&report.outputs[1]).unwrap(), 0);
    assert_eq!(from_bytes::<u64>(&report.outputs[3]).unwrap(), 2);
}

#[test]
fn collectives_with_rendezvous_payloads() {
    // Payloads above the eager threshold inside collectives.
    let cfg = RuntimeConfig::new(4).with_eager_threshold(256);
    let report = Runtime::builder(cfg)
        .app(std::sync::Arc::new(|rank: &mut Rank| {
            let big: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            let got = rank.bcast(COMM_WORLD, 0, &big)?;
            assert_eq!(got.len(), 1000);
            let sum = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &got)?;
            assert_eq!(sum[10], 40.0);
            Ok(vec![1])
        }))
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    assert!(report.outputs.iter().all(|o| o == &[1u8]));
}
