//! The deprecated compatibility shims stay behaviourally identical to the
//! builder API they forward to. This is the only place in the workspace
//! allowed to call them — CI compiles everything else with `-D deprecated`.

use mini_mpi::ft::NativeProvider;
use mini_mpi::prelude::*;
use mini_mpi::AppFn;
use std::sync::Arc;

fn app() -> Arc<AppFn> {
    Arc::new(|rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let req = rank.irecv(COMM_WORLD, ((me + n - 1) % n) as u32, 7)?;
        rank.send(COMM_WORLD, (me + 1) % n, 7, &[me as u64])?;
        let (_st, payload) = rank.wait(req)?;
        Ok(payload.unwrap().to_vec())
    })
}

#[test]
#[allow(deprecated)]
fn run_shim_matches_builder() {
    let cfg = RuntimeConfig::new(4);
    let via_shim = Runtime::new(cfg.clone())
        .run(Arc::new(NativeProvider), app(), Vec::new(), None)
        .unwrap()
        .ok()
        .unwrap();
    let via_builder = Runtime::builder(cfg).app(app()).launch().unwrap().ok().unwrap();
    assert_eq!(via_shim.outputs, via_builder.outputs);
}
