//! Tests of the extended collective set: sendrecv, scan, reduce_scatter,
//! gatherv/scatterv.

use mini_mpi::prelude::*;
use mini_mpi::wire::{from_bytes, to_bytes};

fn run(
    world: usize,
    f: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static,
) -> RunReport {
    Runtime::run_native(world, f).unwrap().ok().unwrap()
}

#[test]
fn sendrecv_ring_shift() {
    let n = 5;
    let report = run(n, move |rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        // Shift right: send to me+1, receive from me-1.
        let got = rank.sendrecv(COMM_WORLD, (me + 1) % n, 3, &[me as u64], (me + n - 1) % n, 3)?;
        Ok(to_bytes(&got[0]))
    });
    for (i, out) in report.outputs.iter().enumerate() {
        let v: u64 = from_bytes(out).unwrap();
        assert_eq!(v as usize, (i + 5 - 1) % 5);
    }
}

#[test]
fn scan_computes_prefix_sums() {
    let n = 6;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as i64;
        let acc = rank.scan(COMM_WORLD, ReduceOp::Sum, &[me, 1])?;
        Ok(to_bytes(&(acc[0], acc[1])))
    });
    for (i, out) in report.outputs.iter().enumerate() {
        let (sum, count): (i64, i64) = from_bytes(out).unwrap();
        assert_eq!(sum, (0..=i as i64).sum::<i64>());
        assert_eq!(count, i as i64 + 1);
    }
}

#[test]
fn scan_single_rank() {
    let report = run(1, |rank| {
        let acc = rank.scan(COMM_WORLD, ReduceOp::Max, &[7.5f64])?;
        Ok(to_bytes(&acc[0]))
    });
    assert_eq!(from_bytes::<f64>(&report.outputs[0]).unwrap(), 7.5);
}

#[test]
fn reduce_scatter_blocks() {
    let n = 4;
    let report = run(n, move |rank| {
        let me = rank.world_rank() as u64;
        // Everyone contributes [me; 8]; block i of the sum goes to rank i.
        let data = vec![me; 8];
        let mine = rank.reduce_scatter(COMM_WORLD, ReduceOp::Sum, &data)?;
        assert_eq!(mine.len(), 2);
        Ok(to_bytes(&mine[0]))
    });
    let total: u64 = (0..4).sum();
    for out in &report.outputs {
        assert_eq!(from_bytes::<u64>(out).unwrap(), total);
    }
}

#[test]
fn reduce_scatter_rejects_ragged_input() {
    let report = run(4, |rank| {
        let bad = rank.reduce_scatter(COMM_WORLD, ReduceOp::Sum, &[1u64; 7]);
        Ok(vec![bad.is_err() as u8])
    });
    assert!(report.outputs.iter().all(|o| o == &[1]));
}

#[test]
fn gatherv_scatterv_ragged() {
    let n = 4;
    let report = run(n, move |rank| {
        let me = rank.world_rank();
        // Member i contributes i+1 elements.
        let mine: Vec<u32> = (0..=me as u32).collect();
        let gathered = rank.gatherv(COMM_WORLD, 0, &mine)?;
        let parts: Vec<Vec<u32>> = if me == 0 {
            assert_eq!(gathered.iter().map(Vec::len).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
            // Send back reversed-size parts.
            (0..4).map(|i| vec![i as u32 * 10; 4 - i]).collect()
        } else {
            Vec::new()
        };
        let got = rank.scatterv(COMM_WORLD, 0, &parts)?;
        assert_eq!(got.len(), 4 - me);
        assert!(got.iter().all(|&x| x == me as u32 * 10));
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1]));
}

#[test]
fn extended_collectives_on_subcommunicator() {
    let report = run(6, |rank| {
        let sub = rank.comm_split(COMM_WORLD, (rank.world_rank() % 2) as u32, 0)?;
        let pos = rank.comm_rank(sub)? as i64;
        let acc = rank.scan(sub, ReduceOp::Sum, &[pos])?;
        assert_eq!(acc[0], (0..=pos).sum::<i64>());
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1]));
}

#[test]
fn comm_dup_preserves_order_with_fresh_context() {
    let report = run(4, |rank| {
        let dup = rank.comm_dup(COMM_WORLD)?;
        assert_ne!(dup, COMM_WORLD);
        assert_eq!(rank.comm_rank(dup)?, rank.world_rank());
        assert_eq!(rank.comm_size(dup)?, 4);
        // Same-tag traffic on the two contexts stays separate.
        let me = rank.world_rank();
        let n = rank.world_size();
        let next = (me + 1) % n;
        let prev = ((me + n - 1) % n) as u32;
        let r_dup = rank.irecv(dup, prev, 1)?;
        let r_world = rank.irecv(COMM_WORLD, prev, 1)?;
        rank.send(dup, next, 1, &[10u64 + me as u64])?;
        rank.send(COMM_WORLD, next, 1, &[20u64 + me as u64])?;
        let (_s, pd) = rank.wait(r_dup)?;
        let (_s, pw) = rank.wait(r_world)?;
        let vd: Vec<u64> = mini_mpi::datatype::unpack(&pd.unwrap())?;
        let vw: Vec<u64> = mini_mpi::datatype::unpack(&pw.unwrap())?;
        assert_eq!(vd[0], 10 + prev as u64, "dup traffic on dup context");
        assert_eq!(vw[0], 20 + prev as u64, "world traffic on world context");
        Ok(vec![1])
    });
    assert!(report.outputs.iter().all(|o| o == &[1]));
}
