//! End-to-end point-to-point tests of the runtime.

use bytes::Bytes;
use mini_mpi::prelude::*;
use mini_mpi::wire::{from_bytes, to_bytes};

fn run(
    world: usize,
    f: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static,
) -> RunReport {
    Runtime::run_native(world, f).unwrap().ok().unwrap()
}

#[test]
fn ring_pass() {
    let n = 8;
    let report = run(n, move |rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let next = (me + 1) % n;
        let prev = (me + n - 1) % n;
        let mut token = vec![me as u64];
        for _ in 0..n {
            rank.send(COMM_WORLD, next, 1, &token)?;
            let (t, st) = rank.recv::<u64>(COMM_WORLD, prev as u32, 1)?;
            assert_eq!(st.src, RankId(prev as u32));
            token = t;
        }
        // After n hops the original token returns.
        Ok(to_bytes(&token[0]))
    });
    for (i, out) in report.outputs.iter().enumerate() {
        let v: u64 = from_bytes(out).unwrap();
        assert_eq!(v as usize, i);
    }
}

#[test]
fn any_source_collects_all() {
    let report = run(5, |rank| {
        if rank.world_rank() == 0 {
            let mut seen = [false; 5];
            for _ in 0..4 {
                let (data, st) = rank.recv::<u64>(COMM_WORLD, Source::Any, 3)?;
                assert_eq!(data[0], st.src.0 as u64 * 10);
                seen[st.src.idx()] = true;
            }
            Ok(to_bytes(&(seen.iter().filter(|&&b| b).count() as u64)))
        } else {
            let me = rank.world_rank() as u64;
            rank.send(COMM_WORLD, 0, 3, &[me * 10])?;
            Ok(vec![])
        }
    });
    let n: u64 = from_bytes(&report.outputs[0]).unwrap();
    assert_eq!(n, 4);
}

#[test]
fn any_tag_receives() {
    let report = run(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(COMM_WORLD, 1, 42, &[1.0f64])?;
            Ok(vec![])
        } else {
            let (_, st) = rank.recv::<f64>(COMM_WORLD, 0u32, TagSel::Any)?;
            Ok(to_bytes(&(st.tag as u64)))
        }
    });
    let tag: u64 = from_bytes(&report.outputs[1]).unwrap();
    assert_eq!(tag, 42);
}

#[test]
fn fifo_per_channel_many_messages() {
    let report = run(2, |rank| {
        const N: u64 = 500;
        if rank.world_rank() == 0 {
            for i in 0..N {
                rank.send(COMM_WORLD, 1, 9, &[i])?;
            }
            Ok(vec![])
        } else {
            let mut ok = true;
            for i in 0..N {
                let (v, _) = rank.recv::<u64>(COMM_WORLD, 0u32, 9)?;
                ok &= v[0] == i;
            }
            Ok(vec![ok as u8])
        }
    });
    assert_eq!(report.outputs[1], vec![1]);
}

#[test]
fn rendezvous_large_messages() {
    // Above the 16 KiB eager threshold: exercises RTS/CTS/Data.
    let report = run(2, |rank| {
        let big: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.5).collect();
        if rank.world_rank() == 0 {
            rank.send(COMM_WORLD, 1, 1, &big)?;
            Ok(vec![])
        } else {
            let (got, st) = rank.recv::<f64>(COMM_WORLD, 0u32, 1)?;
            assert_eq!(st.len, 80_000);
            assert_eq!(got, big);
            Ok(vec![1])
        }
    });
    assert_eq!(report.outputs[1], vec![1]);
}

#[test]
fn isend_irecv_waitall() {
    let report = run(4, |rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let mut sends = Vec::new();
        let mut recvs = Vec::new();
        for p in 0..n {
            if p != me {
                recvs.push(rank.irecv(COMM_WORLD, p as u32, 5)?);
            }
        }
        for p in 0..n {
            if p != me {
                sends.push(rank.isend(COMM_WORLD, p, 5, &[me as u64])?);
            }
        }
        let rres = rank.waitall(&recvs)?;
        rank.waitall(&sends)?;
        let sum: u64 = rres
            .iter()
            .map(|(_, p)| {
                let v: Vec<u64> = mini_mpi::datatype::unpack(p.as_ref().unwrap()).unwrap();
                v[0]
            })
            .sum();
        Ok(to_bytes(&sum))
    });
    // Each rank receives the sum of all other ranks' ids.
    let total: u64 = (0..4).sum();
    for (i, out) in report.outputs.iter().enumerate() {
        let got: u64 = from_bytes(out).unwrap();
        assert_eq!(got, total - i as u64);
    }
}

#[test]
fn waitany_returns_first_available() {
    let report = run(3, |rank| {
        match rank.world_rank() {
            0 => {
                // Wait for both, in whatever order they land.
                let r1 = rank.irecv(COMM_WORLD, 1u32, 1)?;
                let r2 = rank.irecv(COMM_WORLD, 2u32, 1)?;
                let reqs = [r1, r2];
                let (i, st, _) = rank.waitany(&reqs)?;
                let remaining = reqs[1 - i];
                let (st2, _) = rank.wait(remaining)?;
                assert_ne!(st.src, st2.src);
                Ok(vec![1])
            }
            _ => {
                rank.send(COMM_WORLD, 0, 1, &[0u8])?;
                Ok(vec![])
            }
        }
    });
    assert_eq!(report.outputs[0], vec![1]);
}

#[test]
fn test_and_testall_nonblocking() {
    let report = run(2, |rank| {
        if rank.world_rank() == 0 {
            // Delay the send so rank 1's first test is (very likely) None.
            std::thread::sleep(std::time::Duration::from_millis(20));
            rank.send(COMM_WORLD, 1, 2, &[7u64])?;
            Ok(vec![])
        } else {
            let req = rank.irecv(COMM_WORLD, 0u32, 2)?;
            let mut polls = 0u64;
            loop {
                if let Some((_, payload)) = rank.test(req)? {
                    let v: Vec<u64> = mini_mpi::datatype::unpack(&payload.unwrap()).unwrap();
                    assert_eq!(v[0], 7);
                    break;
                }
                polls += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            Ok(to_bytes(&polls))
        }
    });
    assert!(!report.outputs[1].is_empty());
}

#[test]
fn iprobe_then_recv() {
    let report = run(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(COMM_WORLD, 1, 11, &[3u32, 4, 5])?;
            Ok(vec![])
        } else {
            // Poll until the message shows up, then receive exactly it.
            let st = loop {
                if let Some(st) = rank.iprobe(COMM_WORLD, Source::Any, 11)? {
                    break st;
                }
                std::thread::sleep(std::time::Duration::from_millis(1));
            };
            assert_eq!(st.len, 12);
            let (v, _) = rank.recv::<u32>(COMM_WORLD, st.src.0, 11)?;
            Ok(to_bytes(&(v.iter().sum::<u32>() as u64)))
        }
    });
    let sum: u64 = from_bytes(&report.outputs[1]).unwrap();
    assert_eq!(sum, 12);
}

#[test]
fn send_to_self() {
    let report = run(1, |rank| {
        let req = rank.irecv(COMM_WORLD, 0u32, 1)?;
        rank.send(COMM_WORLD, 0, 1, &[9u64])?;
        let (_, payload) = rank.wait(req)?;
        let v: Vec<u64> = mini_mpi::datatype::unpack(&payload.unwrap()).unwrap();
        Ok(to_bytes(&v[0]))
    });
    let v: u64 = from_bytes(&report.outputs[0]).unwrap();
    assert_eq!(v, 9);
}

#[test]
fn deadlock_is_detected_not_hung() {
    let cfg = RuntimeConfig::new(2).with_deadlock_timeout(std::time::Duration::from_millis(200));
    let report = Runtime::builder(cfg)
        .app(std::sync::Arc::new(|rank: &mut Rank| {
            if rank.world_rank() == 0 {
                // Receive that can never be satisfied.
                let (_b, _s) = rank.recv_bytes(COMM_WORLD, 1u32, 999)?;
            }
            Ok(vec![])
        }))
        .launch()
        .unwrap();
    assert!(!report.errors.is_empty());
    assert!(report.errors[0].1.contains("deadlock"));
}

#[test]
fn reserved_tag_rejected() {
    let report = Runtime::run_native(1, |rank| {
        let err = rank.send(COMM_WORLD, 0, mini_mpi::types::TAG_USER_LIMIT + 1, &[0u8]);
        assert!(err.is_err());
        Ok(vec![1])
    })
    .unwrap()
    .ok()
    .unwrap();
    assert_eq!(report.outputs[0], vec![1]);
}

#[test]
fn raw_bytes_roundtrip() {
    let report = run(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send_bytes(COMM_WORLD, 1, 4, Bytes::from_static(b"payload"))?;
            Ok(vec![])
        } else {
            let (b, _) = rank.recv_bytes(COMM_WORLD, 0u32, 4)?;
            Ok(b.to_vec())
        }
    });
    assert_eq!(report.outputs[1], b"payload");
}

#[test]
fn stats_track_traffic() {
    let report = run(2, |rank| {
        if rank.world_rank() == 0 {
            rank.send(COMM_WORLD, 1, 1, &[0u8; 64])?;
            rank.send(COMM_WORLD, 1, 1, &[0u8; 36])?;
        } else {
            rank.recv::<u8>(COMM_WORLD, 0u32, 1)?;
            rank.recv::<u8>(COMM_WORLD, 0u32, 1)?;
        }
        Ok(vec![])
    });
    assert_eq!(report.stats[0].sent_bytes[1], 100);
    assert_eq!(report.stats[0].sent_msgs[1], 2);
    assert_eq!(report.stats[1].recv_bytes[0], 100);
}
