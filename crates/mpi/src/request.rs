//! Non-blocking request bookkeeping.

use crate::envelope::{Envelope, Message};
use crate::error::{MpiError, Result};
use crate::types::{CommId, MatchIdent, RankId, Source, Tag, TagSel};
use bytes::Bytes;
use std::collections::HashMap;

/// Handle of a non-blocking operation (like `MPI_Request`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// What a posted receive is willing to match (§3.2 of the paper:
/// source, tag, communicator — plus the §4.3 extra identifier).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvSpec {
    /// Communicator the request belongs to.
    pub comm: CommId,
    /// Source selector (may be `Any` = `MPI_ANY_SOURCE`).
    pub src: Source,
    /// Tag selector (may be `Any` = `MPI_ANY_TAG`).
    pub tag: TagSel,
    /// `(pattern_id, iteration_id)` of the active pattern when posted.
    pub ident: MatchIdent,
}

impl RecvSpec {
    /// Basic envelope admissibility (communicator, source, tag). The
    /// fault-tolerance layer adds its own criterion (ident equality for SPBC)
    /// on top of this.
    #[inline]
    pub fn accepts(&self, env: &Envelope) -> bool {
        self.comm == env.comm && self.src.accepts(env.src) && self.tag.accepts(env.tag)
    }

    /// True when this is an anonymous (`MPI_ANY_SOURCE`) request.
    #[inline]
    pub fn is_anonymous(&self) -> bool {
        matches!(self.src, Source::Any)
    }
}

/// Completion information returned by `wait`-family calls
/// (like `MPI_Status`).
#[derive(Clone, Debug, PartialEq)]
pub struct Status {
    /// Actual source of the message (meaningful for receives).
    pub src: RankId,
    /// Actual tag.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
    /// Per-channel sequence number of the message.
    pub seqnum: u64,
    /// Identifier the message carried.
    pub ident: MatchIdent,
}

impl Status {
    /// Build a status from an envelope.
    pub fn of(env: &Envelope) -> Self {
        Status {
            src: env.src,
            tag: env.tag,
            len: env.plen as usize,
            seqnum: env.seqnum,
            ident: env.ident,
        }
    }

    /// A trivial status for completed sends.
    pub fn send_done(dst: RankId, tag: Tag, len: usize) -> Self {
        Status { src: dst, tag, len, seqnum: 0, ident: MatchIdent::DEFAULT }
    }
}

/// Lifecycle state of a request.
#[derive(Debug)]
pub enum ReqState {
    /// Send posted; rendezvous transfer awaiting CTS (payload kept for Data).
    SendPending {
        /// Envelope of the pending transfer.
        env: Envelope,
    },
    /// Receive posted, not yet matched (sits in the posted queue).
    RecvPosted {
        /// What it may match.
        spec: RecvSpec,
    },
    /// Receive matched to a rendezvous envelope; CTS sent, awaiting Data.
    RecvMatched {
        /// Envelope of the matched message.
        env: Envelope,
        /// The original request spec (kept so the request can be re-posted if
        /// the sender dies before shipping the payload).
        spec: RecvSpec,
    },
    /// Operation finished. `payload` is `Some` for receives.
    Done {
        /// Completion status.
        status: Status,
        /// Received payload (None for sends).
        payload: Option<Bytes>,
    },
}

impl ReqState {
    /// True when the operation has completed.
    pub fn is_done(&self) -> bool {
        matches!(self, ReqState::Done { .. })
    }
}

/// Table of live requests owned by one rank.
#[derive(Default)]
pub struct RequestTable {
    next: u64,
    slots: HashMap<u64, ReqState>,
}

impl RequestTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a new request, returning its id.
    pub fn insert(&mut self, state: ReqState) -> RequestId {
        let id = self.next;
        self.next += 1;
        self.slots.insert(id, state);
        RequestId(id)
    }

    /// Borrow a request's state.
    pub fn get(&self, id: RequestId) -> Result<&ReqState> {
        self.slots.get(&id.0).ok_or_else(|| MpiError::invalid(format!("unknown request {id:?}")))
    }

    /// Mutably borrow a request's state.
    pub fn get_mut(&mut self, id: RequestId) -> Result<&mut ReqState> {
        self.slots
            .get_mut(&id.0)
            .ok_or_else(|| MpiError::invalid(format!("unknown request {id:?}")))
    }

    /// Does the request exist (not yet consumed)?
    pub fn contains(&self, id: RequestId) -> bool {
        self.slots.contains_key(&id.0)
    }

    /// Mark a request complete.
    pub fn complete(
        &mut self,
        id: RequestId,
        status: Status,
        payload: Option<Bytes>,
    ) -> Result<()> {
        let slot = self.get_mut(id)?;
        debug_assert!(!slot.is_done(), "request {id:?} completed twice");
        *slot = ReqState::Done { status, payload };
        Ok(())
    }

    /// Deliver a full message to a matched rendezvous receive.
    pub fn deliver_data(&mut self, id: RequestId, msg: Message) -> Result<()> {
        let status = Status::of(&msg.env);
        self.complete(id, status, Some(msg.payload))
    }

    /// Is the request complete?
    pub fn is_done(&self, id: RequestId) -> Result<bool> {
        Ok(self.get(id)?.is_done())
    }

    /// Take a completed request's result out of the table.
    ///
    /// Errors if the request is unknown or not yet complete.
    pub fn take_done(&mut self, id: RequestId) -> Result<(Status, Option<Bytes>)> {
        match self.slots.get(&id.0) {
            None => Err(MpiError::invalid(format!("unknown request {id:?}"))),
            Some(s) if !s.is_done() => {
                Err(MpiError::InvalidState(format!("request {id:?} not complete")))
            }
            Some(_) => match self.slots.remove(&id.0) {
                Some(ReqState::Done { status, payload }) => Ok((status, payload)),
                _ => unreachable!(),
            },
        }
    }

    /// Iterate all live requests mutably (recovery bookkeeping).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (RequestId, &mut ReqState)> {
        self.slots.iter_mut().map(|(&id, st)| (RequestId(id), st))
    }

    /// Number of live (unconsumed) requests.
    pub fn live(&self) -> usize {
        self.slots.len()
    }

    /// Number of live requests that are not yet complete.
    pub fn outstanding(&self) -> usize {
        self.slots.values().filter(|s| !s.is_done()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, COMM_WORLD};

    fn env(src: u32, tag: Tag) -> Envelope {
        Envelope {
            src: RankId(src),
            dst: RankId(9),
            comm: COMM_WORLD,
            tag,
            seqnum: 1,
            plen: 0,
            lamport: 0,
            ident: MatchIdent::DEFAULT,
        }
    }

    #[test]
    fn spec_accepts_matrix() {
        let spec = RecvSpec {
            comm: COMM_WORLD,
            src: Source::Rank(RankId(2)),
            tag: TagSel::Tag(5),
            ident: MatchIdent::DEFAULT,
        };
        assert!(spec.accepts(&env(2, 5)));
        assert!(!spec.accepts(&env(3, 5)));
        assert!(!spec.accepts(&env(2, 6)));
        let any = RecvSpec { src: Source::Any, tag: TagSel::Any, ..spec };
        assert!(any.accepts(&env(3, 6)));
        assert!(any.is_anonymous());
        assert!(!spec.is_anonymous());
    }

    #[test]
    fn spec_rejects_other_comm() {
        let spec = RecvSpec {
            comm: CommId(7),
            src: Source::Any,
            tag: TagSel::Any,
            ident: MatchIdent::DEFAULT,
        };
        assert!(!spec.accepts(&env(1, 1)));
    }

    #[test]
    fn request_lifecycle() {
        let mut t = RequestTable::new();
        let id = t.insert(ReqState::RecvPosted {
            spec: RecvSpec {
                comm: COMM_WORLD,
                src: Source::Any,
                tag: TagSel::Any,
                ident: MatchIdent::DEFAULT,
            },
        });
        assert!(!t.is_done(id).unwrap());
        assert!(t.take_done(id).is_err(), "cannot take incomplete request");
        t.complete(id, Status::of(&env(1, 2)), Some(Bytes::from_static(b"hi"))).unwrap();
        assert!(t.is_done(id).unwrap());
        let (st, payload) = t.take_done(id).unwrap();
        assert_eq!(st.src, RankId(1));
        assert_eq!(payload.unwrap(), Bytes::from_static(b"hi"));
        assert!(!t.contains(id));
        assert!(t.get(id).is_err());
    }

    #[test]
    fn outstanding_counts_incomplete_only() {
        let mut t = RequestTable::new();
        let a = t.insert(ReqState::SendPending { env: env(0, 0) });
        let _b = t.insert(ReqState::SendPending { env: env(0, 0) });
        assert_eq!(t.outstanding(), 2);
        t.complete(a, Status::send_done(RankId(1), 0, 0), None).unwrap();
        assert_eq!(t.outstanding(), 1);
        assert_eq!(t.live(), 2);
    }

    #[test]
    fn status_of_envelope() {
        let e = Envelope { plen: 77, ..env(4, 9) };
        let s = Status::of(&e);
        assert_eq!(s.len, 77);
        assert_eq!(s.src, RankId(4));
        assert_eq!(e.channel(), ChannelId::new(RankId(4), RankId(9), COMM_WORLD));
    }
}
