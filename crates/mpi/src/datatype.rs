//! Typed payload helpers.
//!
//! MPI messages are typed buffers; our transport carries raw bytes. `Scalar`
//! provides the fixed-width little-endian conversion for the element types the
//! workloads use, plus the reduction algebra needed by collectives.

use crate::error::{MpiError, Result};
use bytes::Bytes;

/// Element types that can be shipped in messages and reduced by collectives.
pub trait Scalar: Copy + PartialEq + std::fmt::Debug + Send + 'static {
    /// Size of one element on the wire.
    const WIDTH: usize;
    /// Write one element.
    fn write(self, out: &mut Vec<u8>);
    /// Read one element from exactly `Self::WIDTH` bytes.
    fn read(b: &[u8]) -> Self;
    /// Addition for `ReduceOp::Sum`.
    fn add(self, other: Self) -> Self;
    /// Minimum for `ReduceOp::Min`.
    fn min_of(self, other: Self) -> Self;
    /// Maximum for `ReduceOp::Max`.
    fn max_of(self, other: Self) -> Self;
}

macro_rules! impl_scalar_int {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write(self, out: &mut Vec<u8>) { out.extend_from_slice(&self.to_le_bytes()); }
            #[inline]
            fn read(b: &[u8]) -> Self { <$t>::from_le_bytes(b.try_into().unwrap()) }
            #[inline]
            fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline]
            fn min_of(self, other: Self) -> Self { self.min(other) }
            #[inline]
            fn max_of(self, other: Self) -> Self { self.max(other) }
        }
    )*};
}

impl_scalar_int!(u8, u16, u32, u64, i32, i64);

macro_rules! impl_scalar_float {
    ($($t:ty),*) => {$(
        impl Scalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write(self, out: &mut Vec<u8>) { out.extend_from_slice(&self.to_le_bytes()); }
            #[inline]
            fn read(b: &[u8]) -> Self { <$t>::from_le_bytes(b.try_into().unwrap()) }
            #[inline]
            fn add(self, other: Self) -> Self { self + other }
            #[inline]
            fn min_of(self, other: Self) -> Self { self.min(other) }
            #[inline]
            fn max_of(self, other: Self) -> Self { self.max(other) }
        }
    )*};
}

impl_scalar_float!(f32, f64);

/// Reduction operators for `reduce`/`allreduce`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Apply the operator to a pair of elements.
    #[inline]
    pub fn apply<T: Scalar>(self, a: T, b: T) -> T {
        match self {
            ReduceOp::Sum => a.add(b),
            ReduceOp::Min => a.min_of(b),
            ReduceOp::Max => a.max_of(b),
        }
    }

    /// Combine `src` into `acc` element-wise.
    pub fn fold<T: Scalar>(self, acc: &mut [T], src: &[T]) {
        debug_assert_eq!(acc.len(), src.len());
        for (a, s) in acc.iter_mut().zip(src) {
            *a = self.apply(*a, *s);
        }
    }
}

/// Serialize a slice of scalars into a payload.
pub fn pack<T: Scalar>(data: &[T]) -> Bytes {
    let mut out = Vec::with_capacity(data.len() * T::WIDTH);
    for &x in data {
        x.write(&mut out);
    }
    Bytes::from(out)
}

/// Deserialize a payload into a vector of scalars.
pub fn unpack<T: Scalar>(payload: &[u8]) -> Result<Vec<T>> {
    if !payload.len().is_multiple_of(T::WIDTH) {
        return Err(MpiError::Codec(format!(
            "payload length {} not a multiple of element width {}",
            payload.len(),
            T::WIDTH
        )));
    }
    Ok(payload.chunks_exact(T::WIDTH).map(T::read).collect())
}

/// Number of `T` elements in a payload (errors if not aligned).
pub fn count_of<T: Scalar>(payload: &[u8]) -> Result<usize> {
    if !payload.len().is_multiple_of(T::WIDTH) {
        return Err(MpiError::Codec("payload not element-aligned".into()));
    }
    Ok(payload.len() / T::WIDTH)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_f64() {
        let v = vec![1.5f64, -2.25, 0.0, f64::MAX];
        let b = pack(&v);
        assert_eq!(b.len(), 32);
        assert_eq!(unpack::<f64>(&b).unwrap(), v);
    }

    #[test]
    fn pack_unpack_ints() {
        let v = vec![1u32, u32::MAX, 7];
        assert_eq!(unpack::<u32>(&pack(&v)).unwrap(), v);
        let w = vec![-5i64, 0, i64::MIN];
        assert_eq!(unpack::<i64>(&pack(&w)).unwrap(), w);
    }

    #[test]
    fn misaligned_rejected() {
        assert!(unpack::<f64>(&[0u8; 7]).is_err());
        assert!(count_of::<u32>(&[0u8; 6]).is_err());
        assert_eq!(count_of::<u32>(&[0u8; 8]).unwrap(), 2);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(2.0f64, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2u64, 3), 2);
        assert_eq!(ReduceOp::Max.apply(2i64, 3), 3);
        let mut acc = vec![1.0f64, 5.0];
        ReduceOp::Max.fold(&mut acc, &[4.0, 2.0]);
        assert_eq!(acc, vec![4.0, 5.0]);
    }

    #[test]
    fn wrapping_int_sum() {
        assert_eq!(ReduceOp::Sum.apply(u8::MAX, 1u8), 0);
    }
}
