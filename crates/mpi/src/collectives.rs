//! Collective operations, built on point-to-point messages.
//!
//! The paper assumes collectives are implemented over point-to-point
//! communication (Section 3.2) — so ours are, which means collective traffic
//! is logged and replayed by the protocols exactly like application traffic.
//!
//! Every operation: uses named sources only (deterministic), runs under the
//! *default* match identifier (collective plumbing is never part of a
//! user-declared pattern), and takes a fresh tag from the per-communicator
//! collective sequence so concurrent operations on the same communicator
//! cannot cross-match.

use crate::datatype::{pack, unpack, ReduceOp, Scalar};
use crate::error::{MpiError, Result};
use crate::rank::Rank;
use crate::types::{CommId, MatchIdent, RankId, Source, Tag, TagSel, TAG_COLL_BASE};
use crate::util::{chain_u64, fnv1a_seeded};
use crate::wire::{from_bytes, to_bytes};
use bytes::Bytes;

/// Runs `body` with the default match identifier, restoring afterwards.
fn with_default_ident<T>(rank: &mut Rank, body: impl FnOnce(&mut Rank) -> Result<T>) -> Result<T> {
    let saved = rank.ident();
    rank.set_ident(MatchIdent::DEFAULT);
    let out = body(rank);
    rank.set_ident(saved);
    out
}

/// Relative position helpers for root-rotated binomial trees.
#[inline]
fn rel(pos: usize, root: usize, n: usize) -> usize {
    (pos + n - root) % n
}

#[inline]
fn unrel(r: usize, root: usize, n: usize) -> usize {
    (r + root) % n
}

impl Rank {
    /// Allocate the tag for the next collective operation on `comm`.
    fn coll_tag(&mut self, comm: CommId) -> Result<Tag> {
        let info = self
            .inner
            .comms
            .get_mut(&comm)
            .ok_or_else(|| MpiError::invalid(format!("unknown communicator {comm:?}")))?;
        let seq = info.coll_seq;
        info.coll_seq += 1;
        Ok(TAG_COLL_BASE | ((seq as Tag) & 0x0FFF_FFFF))
    }

    /// Internal send that allows reserved (collective) tags.
    fn coll_send(&mut self, comm: CommId, dst_pos: usize, tag: Tag, payload: Bytes) -> Result<()> {
        let dst = self.inner.comm(comm)?.world_rank(dst_pos)?;
        let env = self.inner.next_env(dst, comm, tag, payload.len());
        self.inner.stats.on_send(env.channel(), tag, &payload, (0, 0));
        let action = {
            let mut ctx = crate::ft::FtCtx { inner: &mut self.inner };
            self.ft.on_send(&mut ctx, &env, &payload)
        };
        match action {
            crate::ft::SendAction::Suppress => Ok(()),
            crate::ft::SendAction::Forward => {
                let req = self.inner.reqs.insert(crate::request::ReqState::SendPending { env });
                self.inner.transmit_message(env, payload, Some(req));
                let _ = self.wait(req)?;
                Ok(())
            }
        }
    }

    /// Internal receive from a comm-relative position on a reserved tag.
    fn coll_recv(&mut self, comm: CommId, src_pos: usize, tag: Tag) -> Result<Bytes> {
        let src = self.inner.comm(comm)?.world_rank(src_pos)?;
        let req = self.irecv_resolved(comm, Source::Rank(src), TagSel::Tag(tag))?;
        let (_st, payload) = self.wait(req)?;
        Ok(payload.expect("collective recv payload"))
    }

    /// Synchronize all members of `comm` (dissemination barrier).
    pub fn barrier(&mut self, comm: CommId) -> Result<()> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if n <= 1 {
                return Ok(());
            }
            let mut gap = 1;
            while gap < n {
                let to = (pos + gap) % n;
                let from = (pos + n - gap) % n;
                rank.coll_send(comm, to, tag, Bytes::new())?;
                let _ = rank.coll_recv(comm, from, tag)?;
                gap <<= 1;
            }
            Ok(())
        })
    }

    /// Broadcast `data` from `root` (comm rank); non-roots receive into the
    /// returned vector. Binomial tree.
    pub fn bcast<T: Scalar>(&mut self, comm: CommId, root: usize, data: &[T]) -> Result<Vec<T>> {
        let payload = with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if root >= n {
                return Err(MpiError::invalid(format!("bcast root {root} out of range")));
            }
            let r = rel(pos, root, n);
            // Binomial tree on root-relative positions: the parent of r is r
            // with its lowest set bit cleared; children are r + h for every
            // power of two h below r's lowest set bit (largest first).
            let payload: Bytes = if r == 0 {
                pack(data)
            } else {
                let parent = r - lowest_set_bit(r);
                rank.coll_recv(comm, unrel(parent, root, n), tag)?
            };
            let mut half = if r == 0 { next_pow2(n) / 2 } else { lowest_set_bit(r) / 2 };
            while half >= 1 {
                if r + half < n {
                    rank.coll_send(comm, unrel(r + half, root, n), tag, payload.clone())?;
                }
                half /= 2;
            }
            Ok(payload)
        })?;
        unpack(&payload)
    }

    /// Reduce element-wise onto `root` (comm rank). Every member passes a
    /// same-length slice; the root gets the reduction, others get their input
    /// back. Fold order is fixed by the tree, so results are reproducible.
    pub fn reduce<T: Scalar>(
        &mut self,
        comm: CommId,
        root: usize,
        op: ReduceOp,
        data: &[T],
    ) -> Result<Vec<T>> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if root >= n {
                return Err(MpiError::invalid(format!("reduce root {root} out of range")));
            }
            let r = rel(pos, root, n);
            let mut acc: Vec<T> = data.to_vec();
            let mut gap = 1;
            loop {
                if r.is_multiple_of(2 * gap) {
                    // Receiver at this level.
                    if r + gap < n {
                        let b = rank.coll_recv(comm, unrel(r + gap, root, n), tag)?;
                        let other: Vec<T> = unpack(&b)?;
                        if other.len() != acc.len() {
                            return Err(MpiError::invalid("reduce length mismatch"));
                        }
                        op.fold(&mut acc, &other);
                    }
                } else {
                    rank.coll_send(comm, unrel(r - gap, root, n), tag, pack(&acc))?;
                    break;
                }
                gap *= 2;
                if gap >= n {
                    break;
                }
            }
            Ok(acc)
        })
    }

    /// Allreduce = reduce to comm rank 0 + broadcast.
    pub fn allreduce<T: Scalar>(
        &mut self,
        comm: CommId,
        op: ReduceOp,
        data: &[T],
    ) -> Result<Vec<T>> {
        let partial = self.reduce(comm, 0, op, data)?;
        self.bcast(comm, 0, &partial)
    }

    /// Gather every member's slice at `root`, concatenated in comm-rank
    /// order. Non-roots get an empty vector.
    pub fn gather<T: Scalar>(
        &mut self,
        comm: CommId,
        root: usize,
        data: &[T],
    ) -> Result<Vec<Vec<T>>> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if pos == root {
                let mut out = Vec::with_capacity(n);
                for p in 0..n {
                    if p == root {
                        out.push(data.to_vec());
                    } else {
                        let b = rank.coll_recv(comm, p, tag)?;
                        out.push(unpack(&b)?);
                    }
                }
                Ok(out)
            } else {
                rank.coll_send(comm, root, tag, pack(data))?;
                Ok(Vec::new())
            }
        })
    }

    /// Allgather: every member ends with every member's slice.
    pub fn allgather<T: Scalar>(&mut self, comm: CommId, data: &[T]) -> Result<Vec<Vec<T>>> {
        let gathered = self.gather(comm, 0, data)?;
        // Root flattens with per-part lengths, then broadcasts.
        let encoded: Vec<u8> = if self.comm_rank(comm)? == 0 {
            let parts: Vec<Vec<u8>> = gathered.iter().map(|p| pack(p).to_vec()).collect();
            to_bytes(&parts)
        } else {
            Vec::new()
        };
        let bytes = self.bcast::<u8>(comm, 0, &encoded)?;
        let parts: Vec<Vec<u8>> = from_bytes(&bytes)?;
        parts.iter().map(|p| unpack(p)).collect()
    }

    /// Scatter: root sends `parts[i]` to comm rank `i`; returns this member's
    /// part.
    pub fn scatter<T: Scalar>(
        &mut self,
        comm: CommId,
        root: usize,
        parts: &[Vec<T>],
    ) -> Result<Vec<T>> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if pos == root {
                if parts.len() != n {
                    return Err(MpiError::invalid(format!(
                        "scatter needs {n} parts, got {}",
                        parts.len()
                    )));
                }
                for (p, part) in parts.iter().enumerate() {
                    if p != root {
                        rank.coll_send(comm, p, tag, pack(part))?;
                    }
                }
                Ok(parts[root].clone())
            } else {
                let b = rank.coll_recv(comm, root, tag)?;
                unpack(&b)
            }
        })
    }

    /// All-to-all personalized exchange: member `i` sends `parts[j]` to `j`
    /// and receives `n` parts ordered by source comm rank.
    pub fn alltoall<T: Scalar>(&mut self, comm: CommId, parts: &[Vec<T>]) -> Result<Vec<Vec<T>>> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            if parts.len() != n {
                return Err(MpiError::invalid(format!(
                    "alltoall needs {n} parts, got {}",
                    parts.len()
                )));
            }
            let mut out: Vec<Vec<T>> = vec![Vec::new(); n];
            out[pos] = parts[pos].clone();
            // Pairwise rounds: in round k exchange with (pos+k) / (pos-k).
            for k in 1..n {
                let to = (pos + k) % n;
                let from = (pos + n - k) % n;
                let from_world = rank.inner.comm(comm)?.world_rank(from)?;
                // Post the receive first so the exchange cannot deadlock even
                // with rendezvous-sized parts.
                let rreq = rank.irecv_resolved(comm, Source::Rank(from_world), TagSel::Tag(tag))?;
                rank.coll_send(comm, to, tag, pack(&parts[to]))?;
                let (_st, payload) = rank.wait(rreq)?;
                out[from] = unpack(&payload.expect("alltoall payload"))?;
            }
            Ok(out)
        })
    }

    /// Split `comm` by `color`; members with the same color form a new
    /// communicator ordered by `(key, world rank)`. Returns the new
    /// communicator's id.
    ///
    /// The child id derives deterministically from
    /// `(parent id, split sequence, color)` so all executions agree.
    pub fn comm_split(&mut self, comm: CommId, color: u32, key: i64) -> Result<CommId> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?.clone();
            let (n, pos) = (info.size(), info.my_pos);
            let split_seq = info.split_seq;

            // Gather (color, key) at comm rank 0.
            let mine = to_bytes(&(color, key));
            let mut table: Vec<(u32, i64)> = Vec::new();
            if pos == 0 {
                table.reserve(n);
                table.push((color, key));
                for p in 1..n {
                    let b = rank.coll_recv(comm, p, tag)?;
                    table.push(from_bytes(&b)?);
                }
            } else {
                rank.coll_send(comm, 0, tag, Bytes::from(mine))?;
            }

            // Root computes every group and scatters the assignments.
            let assignment: (u64, Vec<RankId>) = if pos == 0 {
                let mut per_member: Vec<Option<(u64, Vec<RankId>)>> = vec![None; n];
                let mut colors: Vec<u32> = table.iter().map(|&(c, _)| c).collect();
                colors.sort_unstable();
                colors.dedup();
                for c in colors {
                    let mut group: Vec<(i64, usize)> = table
                        .iter()
                        .enumerate()
                        .filter(|(_, &(tc, _))| tc == c)
                        .map(|(p, &(_, k))| (k, p))
                        .collect();
                    group.sort_unstable();
                    let members: Vec<RankId> =
                        group.iter().map(|&(_, p)| info.members[p]).collect();
                    let id = derive_comm_id(info.id, split_seq, c);
                    for &(_, p) in &group {
                        per_member[p] = Some((id, members.clone()));
                    }
                }
                for (p, a) in per_member.iter().enumerate() {
                    let a = a.as_ref().expect("every member colored");
                    if p != 0 {
                        let body = to_bytes(&(a.0, a.1.clone()));
                        rank.coll_send(comm, p, tag, Bytes::from(body))?;
                    }
                }
                per_member[0].clone().expect("root colored")
            } else {
                let b = rank.coll_recv(comm, 0, tag)?;
                let (id, members): (u64, Vec<RankId>) = from_bytes(&b)?;
                (id, members)
            };

            let (id_raw, members) = assignment;
            let id = CommId(id_raw);
            let my_pos =
                members.iter().position(|&r| r == rank.inner.me).expect("member of own group");
            rank.inner.comms.insert(
                id,
                crate::inner::CommInfo { id, members, my_pos, split_seq: 0, coll_seq: 0 },
            );
            if let Some(parent) = rank.inner.comms.get_mut(&comm) {
                parent.split_seq += 1;
            }
            Ok(id)
        })
    }
}

/// Deterministic child communicator id.
fn derive_comm_id(parent: CommId, split_seq: u64, color: u32) -> u64 {
    let mut h = fnv1a_seeded(0x5350_4243, &parent.0.to_le_bytes());
    h = chain_u64(h, split_seq);
    h = chain_u64(h, color as u64);
    // Avoid colliding with COMM_WORLD(0).
    h | 1
}

/// Smallest power of two >= n.
fn next_pow2(n: usize) -> usize {
    n.next_power_of_two()
}

/// Value of the lowest set bit.
fn lowest_set_bit(x: usize) -> usize {
    x & x.wrapping_neg()
}

impl Rank {
    /// Combined send+receive (like `MPI_Sendrecv`): deadlock-free exchange
    /// with possibly different partners.
    pub fn sendrecv<T: Scalar>(
        &mut self,
        comm: CommId,
        dst: usize,
        send_tag: Tag,
        data: &[T],
        src: usize,
        recv_tag: Tag,
    ) -> Result<Vec<T>> {
        let src_world = self.inner.comm(comm)?.world_rank(src)?;
        let rreq = self.irecv_resolved(comm, Source::Rank(src_world), TagSel::Tag(recv_tag))?;
        let sreq = self.isend(comm, dst, send_tag, data)?;
        let (_st, payload) = self.wait(rreq)?;
        self.wait(sreq)?;
        unpack(&payload.expect("sendrecv payload"))
    }

    /// Inclusive prefix reduction (like `MPI_Scan`): comm rank `i` receives
    /// the reduction of ranks `0..=i`'s contributions. Linear chain —
    /// deterministic fold order.
    pub fn scan<T: Scalar>(&mut self, comm: CommId, op: ReduceOp, data: &[T]) -> Result<Vec<T>> {
        with_default_ident(self, |rank| {
            let tag = rank.coll_tag(comm)?;
            let info = rank.inner.comm(comm)?;
            let (n, pos) = (info.size(), info.my_pos);
            let mut acc: Vec<T> = data.to_vec();
            if pos > 0 {
                let b = rank.coll_recv(comm, pos - 1, tag)?;
                let prefix: Vec<T> = unpack(&b)?;
                if prefix.len() != acc.len() {
                    return Err(MpiError::invalid("scan length mismatch"));
                }
                // acc = prefix op mine, in rank order.
                let mine = acc.clone();
                acc = prefix;
                op.fold(&mut acc, &mine);
            }
            if pos + 1 < n {
                rank.coll_send(comm, pos + 1, tag, pack(&acc))?;
            }
            Ok(acc)
        })
    }

    /// Reduce + scatter (like `MPI_Reduce_scatter_block`): element-wise
    /// reduction of everyone's `n * block` elements, member `i` keeping
    /// block `i`.
    pub fn reduce_scatter<T: Scalar>(
        &mut self,
        comm: CommId,
        op: ReduceOp,
        data: &[T],
    ) -> Result<Vec<T>> {
        let n = self.comm_size(comm)?;
        if !data.len().is_multiple_of(n) {
            return Err(MpiError::invalid(format!(
                "reduce_scatter needs a multiple of {n} elements, got {}",
                data.len()
            )));
        }
        let block = data.len() / n;
        let reduced = self.reduce(comm, 0, op, data)?;
        let parts: Vec<Vec<T>> = if self.comm_rank(comm)? == 0 {
            reduced.chunks(block).map(<[T]>::to_vec).collect()
        } else {
            Vec::new()
        };
        self.scatter(comm, 0, &parts)
    }

    /// Variable-count gather (like `MPI_Gatherv`): members contribute slices
    /// of different lengths; root receives them in comm-rank order.
    pub fn gatherv<T: Scalar>(
        &mut self,
        comm: CommId,
        root: usize,
        data: &[T],
    ) -> Result<Vec<Vec<T>>> {
        // Our gather already carries per-part lengths on the wire.
        self.gather(comm, root, data)
    }

    /// Variable-count scatter (like `MPI_Scatterv`): root distributes parts
    /// of different lengths.
    pub fn scatterv<T: Scalar>(
        &mut self,
        comm: CommId,
        root: usize,
        parts: &[Vec<T>],
    ) -> Result<Vec<T>> {
        // Our scatter already supports ragged parts.
        self.scatter(comm, root, parts)
    }

    /// Duplicate a communicator (like `MPI_Comm_dup`): same members, same
    /// order, fresh context — traffic on the duplicate cannot match traffic
    /// on the original.
    pub fn comm_dup(&mut self, comm: CommId) -> Result<CommId> {
        let key = self.comm_rank(comm)? as i64;
        self.comm_split(comm, 0, key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_comm_id_deterministic_and_distinct() {
        let a = derive_comm_id(CommId(0), 0, 1);
        let b = derive_comm_id(CommId(0), 0, 1);
        assert_eq!(a, b);
        assert_ne!(a, derive_comm_id(CommId(0), 0, 2));
        assert_ne!(a, derive_comm_id(CommId(0), 1, 1));
        assert_ne!(a, derive_comm_id(CommId(7), 0, 1));
        assert_ne!(a, 0, "never collides with COMM_WORLD");
    }

    #[test]
    fn helpers() {
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(8), 8);
        assert_eq!(lowest_set_bit(12), 4);
        assert_eq!(rel(3, 1, 4), 2);
        assert_eq!(unrel(2, 1, 4), 3);
    }
}
