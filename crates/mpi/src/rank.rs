//! The per-rank application API: the MPI-like surface workloads program
//! against.

use crate::datatype::{pack, unpack, Scalar};
use crate::error::{MpiError, Result};
use crate::ft::{CkptOutcome, FtCtx, FtLayer, SendAction};
use crate::inner::{block_until, complete_match, handle_packet, poll_all, RankInner};
use crate::request::{RecvSpec, ReqState, RequestId, Status};
use crate::types::{CommId, MatchIdent, RankId, Source, Tag, TagSel, TAG_USER_LIMIT};
use crate::wire::{Decode, Encode};
use bytes::Bytes;
use std::time::{Duration, Instant};

/// A completed operation: status plus payload (None for sends).
pub type Completion = (Status, Option<Bytes>);

/// The handle a rank's application closure receives: point-to-point and
/// collective communication, the pattern identifier, checkpointing, and
/// failure points.
///
/// All rank arguments are **communicator ranks** (positions within the given
/// communicator); for `COMM_WORLD` these coincide with world ids.
pub struct Rank {
    pub(crate) inner: RankInner,
    pub(crate) ft: Box<dyn FtLayer>,
}

impl Rank {
    pub(crate) fn new(inner: RankInner, ft: Box<dyn FtLayer>) -> Self {
        Rank { inner, ft }
    }

    // ---------------------------------------------------------- identity --

    /// This rank's world id.
    pub fn world_rank(&self) -> usize {
        self.inner.me.idx()
    }

    /// World size.
    pub fn world_size(&self) -> usize {
        self.inner.world
    }

    /// This rank's position within `comm`.
    pub fn comm_rank(&self, comm: CommId) -> Result<usize> {
        Ok(self.inner.comm(comm)?.my_pos)
    }

    /// Size of `comm`.
    pub fn comm_size(&self, comm: CommId) -> Result<usize> {
        Ok(self.inner.comm(comm)?.size())
    }

    /// Translate a world rank to its position within `comm` (None if the
    /// rank is not a member).
    pub fn comm_rank_of(&self, comm: CommId, world: RankId) -> Result<Option<usize>> {
        Ok(self.inner.comm(comm)?.pos_of(world))
    }

    /// Restart epoch: 0 on the initial execution, incremented per restart.
    pub fn epoch(&self) -> u32 {
        self.inner.epoch
    }

    /// Name of the attached fault-tolerance protocol.
    pub fn protocol(&self) -> &'static str {
        self.ft.name()
    }

    /// Communication statistics so far.
    pub fn stats(&self) -> &crate::stats::RankStats {
        &self.inner.stats
    }

    // ------------------------------------------------------- pattern API --

    /// Set the active match identifier (used by the SPBC pattern API; most
    /// code should use `spbc_core::pattern` instead of calling this
    /// directly).
    pub fn set_ident(&mut self, ident: MatchIdent) {
        self.inner.cur_ident = ident;
    }

    /// The active match identifier.
    pub fn ident(&self) -> MatchIdent {
        self.inner.cur_ident
    }

    // ---------------------------------------------------- point-to-point --

    fn resolve_dst(&self, comm: CommId, dst: usize) -> Result<RankId> {
        self.inner.comm(comm)?.world_rank(dst)
    }

    fn resolve_src(&self, comm: CommId, src: Source) -> Result<Source> {
        match src {
            Source::Any => Ok(Source::Any),
            Source::Rank(pos) => Ok(Source::Rank(self.inner.comm(comm)?.world_rank(pos.idx())?)),
        }
    }

    fn check_tag(tag: Tag) -> Result<()> {
        if tag >= TAG_USER_LIMIT {
            return Err(MpiError::invalid(format!("tag {tag} is in the reserved range")));
        }
        Ok(())
    }

    /// Non-blocking send of raw bytes.
    pub fn isend_bytes(
        &mut self,
        comm: CommId,
        dst: usize,
        tag: Tag,
        payload: Bytes,
    ) -> Result<RequestId> {
        self.inner.check_killed()?;
        Self::check_tag(tag)?;
        let dst = self.resolve_dst(comm, dst)?;
        let env = self.inner.next_env(dst, comm, tag, payload.len());
        // The send *event* exists regardless of suppression — determinism
        // chains must match between original execution and recovery
        // re-execution.
        self.inner.stats.on_send(
            env.channel(),
            tag,
            &payload,
            (env.ident.pattern, env.ident.iteration),
        );
        let action = {
            let mut ctx = FtCtx { inner: &mut self.inner };
            self.ft.on_send(&mut ctx, &env, &payload)
        };
        self.inner.recorder.record(|| crate::recorder::Event::Send {
            dst: env.dst,
            comm: env.comm.0,
            tag,
            seqnum: env.seqnum,
            bytes: env.plen,
            suppressed: action == SendAction::Suppress,
        });
        match action {
            SendAction::Suppress => {
                let st = Status::send_done(env.dst, tag, env.plen as usize);
                Ok(self.inner.reqs.insert(ReqState::Done { status: st, payload: None }))
            }
            SendAction::Forward => {
                let req = self.inner.reqs.insert(ReqState::SendPending { env });
                self.inner.transmit_message(env, payload, Some(req));
                Ok(req)
            }
        }
    }

    /// Non-blocking typed send.
    pub fn isend<T: Scalar>(
        &mut self,
        comm: CommId,
        dst: usize,
        tag: Tag,
        data: &[T],
    ) -> Result<RequestId> {
        self.isend_bytes(comm, dst, tag, pack(data))
    }

    /// Blocking send (non-blocking send + wait).
    pub fn send<T: Scalar>(
        &mut self,
        comm: CommId,
        dst: usize,
        tag: Tag,
        data: &[T],
    ) -> Result<()> {
        let req = self.isend(comm, dst, tag, data)?;
        self.wait(req)?;
        Ok(())
    }

    /// Blocking raw-bytes send.
    pub fn send_bytes(&mut self, comm: CommId, dst: usize, tag: Tag, payload: Bytes) -> Result<()> {
        let req = self.isend_bytes(comm, dst, tag, payload)?;
        self.wait(req)?;
        Ok(())
    }

    /// Non-blocking receive. `src` may be [`Source::Any`] (`MPI_ANY_SOURCE`),
    /// `tag` may be [`TagSel::Any`] (`MPI_ANY_TAG`).
    pub fn irecv(
        &mut self,
        comm: CommId,
        src: impl Into<Source>,
        tag: impl Into<TagSel>,
    ) -> Result<RequestId> {
        self.inner.check_killed()?;
        let spec = RecvSpec {
            comm,
            src: self.resolve_src(comm, src.into())?,
            tag: tag.into(),
            ident: self.inner.cur_ident,
        };
        // Fresh arrivals first, so probe/irecv agree on the queue contents.
        poll_all(&mut self.inner, self.ft.as_mut())?;
        let ft = &*self.ft;
        let admissible = |s: &RecvSpec, e: &crate::envelope::Envelope| ft.match_admissible(s, e);
        if let Some(arrived) = self.inner.engine.match_post(&spec, &admissible) {
            let req = self.inner.reqs.insert(ReqState::RecvPosted { spec });
            complete_match(&mut self.inner, req, arrived.env, arrived.body)?;
            Ok(req)
        } else {
            let req = self.inner.reqs.insert(ReqState::RecvPosted { spec });
            self.inner.engine.post(req, spec);
            Ok(req)
        }
    }

    /// Blocking receive of raw bytes.
    pub fn recv_bytes(
        &mut self,
        comm: CommId,
        src: impl Into<Source>,
        tag: impl Into<TagSel>,
    ) -> Result<(Bytes, Status)> {
        let req = self.irecv(comm, src, tag)?;
        let (st, payload) = self.wait(req)?;
        Ok((payload.expect("recv completes with payload"), st))
    }

    /// Blocking typed receive.
    pub fn recv<T: Scalar>(
        &mut self,
        comm: CommId,
        src: impl Into<Source>,
        tag: impl Into<TagSel>,
    ) -> Result<(Vec<T>, Status)> {
        let (payload, st) = self.recv_bytes(comm, src, tag)?;
        Ok((unpack(&payload)?, st))
    }

    // ------------------------------------------------------- completions --

    /// Wait for one request; consumes it.
    pub fn wait(&mut self, req: RequestId) -> Result<(Status, Option<Bytes>)> {
        block_until(&mut self.inner, self.ft.as_mut(), |inner| inner.reqs.is_done(req), "wait")?;
        self.inner.reqs.take_done(req)
    }

    /// Wait for all requests (consumes them); statuses in argument order.
    pub fn waitall(&mut self, reqs: &[RequestId]) -> Result<Vec<(Status, Option<Bytes>)>> {
        block_until(
            &mut self.inner,
            self.ft.as_mut(),
            |inner| {
                for &r in reqs {
                    if !inner.reqs.is_done(r)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            },
            "waitall",
        )?;
        reqs.iter().map(|&r| self.inner.reqs.take_done(r)).collect()
    }

    /// Wait for *any* of the requests to complete; consumes the completed one
    /// and returns its index (like `MPI_Waitany`). Completion depends on
    /// message-arrival speed — one of the two sources of non-determinism the
    /// paper identifies (Section 3.2).
    pub fn waitany(&mut self, reqs: &[RequestId]) -> Result<(usize, Status, Option<Bytes>)> {
        if reqs.is_empty() {
            return Err(MpiError::invalid("waitany on empty request set"));
        }
        let mut winner = None;
        block_until(
            &mut self.inner,
            self.ft.as_mut(),
            |inner| {
                for (i, &r) in reqs.iter().enumerate() {
                    if inner.reqs.is_done(r)? {
                        winner = Some(i);
                        return Ok(true);
                    }
                }
                Ok(false)
            },
            "waitany",
        )?;
        let i = winner.expect("block_until returned");
        let (st, payload) = self.inner.reqs.take_done(reqs[i])?;
        Ok((i, st, payload))
    }

    /// Non-blocking completion test; consumes the request when complete.
    pub fn test(&mut self, req: RequestId) -> Result<Option<(Status, Option<Bytes>)>> {
        self.inner.check_killed()?;
        poll_all(&mut self.inner, self.ft.as_mut())?;
        if self.inner.reqs.is_done(req)? {
            Ok(Some(self.inner.reqs.take_done(req)?))
        } else {
            Ok(None)
        }
    }

    /// Non-blocking test of a whole set; consumes all when all are complete
    /// (like `MPI_Testall`).
    pub fn testall(&mut self, reqs: &[RequestId]) -> Result<Option<Vec<Completion>>> {
        self.inner.check_killed()?;
        poll_all(&mut self.inner, self.ft.as_mut())?;
        for &r in reqs {
            if !self.inner.reqs.is_done(r)? {
                return Ok(None);
            }
        }
        let mut out = Vec::with_capacity(reqs.len());
        for &r in reqs {
            out.push(self.inner.reqs.take_done(r)?);
        }
        Ok(Some(out))
    }

    // ------------------------------------------------------------ probes --

    /// Non-blocking probe: is a matching message available? Does not consume
    /// the message (like `MPI_Iprobe`).
    pub fn iprobe(
        &mut self,
        comm: CommId,
        src: impl Into<Source>,
        tag: impl Into<TagSel>,
    ) -> Result<Option<Status>> {
        self.inner.check_killed()?;
        let spec = RecvSpec {
            comm,
            src: self.resolve_src(comm, src.into())?,
            tag: tag.into(),
            ident: self.inner.cur_ident,
        };
        poll_all(&mut self.inner, self.ft.as_mut())?;
        let ft = &*self.ft;
        let admissible = |s: &RecvSpec, e: &crate::envelope::Envelope| ft.match_admissible(s, e);
        Ok(self.inner.engine.probe(&spec, &admissible).map(Status::of))
    }

    /// Blocking probe.
    pub fn probe(
        &mut self,
        comm: CommId,
        src: impl Into<Source> + Copy,
        tag: impl Into<TagSel> + Copy,
    ) -> Result<Status> {
        loop {
            if let Some(st) = self.iprobe(comm, src, tag)? {
                return Ok(st);
            }
            // Block for one packet (or poll interval) before re-probing.
            let deadline = Instant::now() + self.inner.cfg.poll_interval;
            block_until(
                &mut self.inner,
                self.ft.as_mut(),
                |_| Ok(Instant::now() >= deadline),
                "probe",
            )?;
        }
    }

    // ------------------------------------------------------- checkpoints --

    /// Offer the protocol a checkpoint opportunity with the application state
    /// `state`. Returns `true` if a checkpoint was actually taken.
    ///
    /// Must be called at an SPMD synchronization boundary with **no live
    /// requests** (all sends/receives waited); this is how coordinated
    /// checkpointing inside a cluster stays consistent.
    pub fn checkpoint_if_due<S: Encode>(&mut self, state: &S) -> Result<bool> {
        self.inner.check_killed()?;
        if self.inner.reqs.live() != 0 {
            return Err(MpiError::InvalidState(format!(
                "checkpoint with {} live requests",
                self.inner.reqs.live()
            )));
        }
        let bytes = crate::wire::to_bytes(state);
        let outcome = {
            let mut ctx = FtCtx { inner: &mut self.inner };
            self.ft.checkpoint_begin(&mut ctx, bytes)?
        };
        match outcome {
            CkptOutcome::NotDue => Ok(false),
            CkptOutcome::InProgress => {
                // Drive coordination: alternate between protocol polling and
                // progress until the checkpoint commits. Hand-rolled rather
                // than `block_until` because the condition needs the ft layer.
                let start = Instant::now();
                let mut next_status = Duration::from_secs(1);
                loop {
                    poll_all(&mut self.inner, self.ft.as_mut())?;
                    let done = {
                        let mut ctx = FtCtx { inner: &mut self.inner };
                        self.ft.checkpoint_poll(&mut ctx)?
                    };
                    if done {
                        self.inner.stats.comm_time += start.elapsed();
                        return Ok(true);
                    }
                    self.inner.check_killed()?;
                    match self.inner.mailbox.recv_timeout(self.inner.cfg.poll_interval) {
                        Ok(pkt) => handle_packet(&mut self.inner, self.ft.as_mut(), pkt)?,
                        Err(crate::transport::RecvTimeoutErr::Timeout) => {
                            let waited = start.elapsed();
                            if self.inner.recorder.is_enabled() && waited >= next_status {
                                next_status = waited + Duration::from_secs(1);
                                let line = format!(
                                    "waiting in checkpoint coordination: {}",
                                    self.inner.debug_snapshot()
                                );
                                self.inner.recorder.set_status(|| line);
                            }
                            if waited > self.inner.cfg.deadlock_timeout {
                                self.inner.recorder.record(|| crate::recorder::Event::Stall {
                                    what: "checkpoint coordination".into(),
                                });
                                let line = format!(
                                    "stuck in checkpoint coordination: {}",
                                    self.inner.debug_snapshot()
                                );
                                self.inner.recorder.set_status(|| line);
                                return Err(MpiError::DeadlockSuspected(format!(
                                    "rank {} stuck in checkpoint coordination; {}",
                                    self.inner.me,
                                    self.inner.debug_snapshot()
                                )));
                            }
                        }
                        Err(crate::transport::RecvTimeoutErr::Disconnected) => {
                            return Err(MpiError::Killed)
                        }
                    }
                }
            }
        }
    }

    /// Application state restored from the checkpoint this rank restarted
    /// from (None on the initial execution or when no checkpoint exists).
    pub fn restore<S: Decode>(&mut self) -> Result<Option<S>> {
        match self.ft.restored_app_state() {
            None => Ok(None),
            Some(bytes) => Ok(Some(crate::wire::from_bytes(&bytes)?)),
        }
    }

    // ---------------------------------------------------------- failures --

    /// A crash-injection site. Applications call this once per iteration;
    /// the failure controller decides whether this rank dies here.
    pub fn failure_point(&mut self) -> Result<()> {
        self.inner.check_killed()?;
        self.inner.failure_points += 1;
        let n = self.inner.failure_points;
        // Plans fire at most once (the controller removes them), so a
        // restarted rank re-passing the same point cannot re-crash on the
        // same plan — but a *different* plan can hit a recovered cluster.
        // The occurrence count restarts with the incarnation.
        let site = crate::failure::FailureSite::FailurePoint { occurrence: n };
        if self.inner.failure.should_fail_at(self.inner.me, site) {
            self.inner
                .failure
                .report(crate::failure::RuntimeEvent::Failure { rank: self.inner.me });
            return Err(MpiError::Killed);
        }
        Ok(())
    }

    // ------------------------------------------------------------- misc --

    /// True once the runtime has begun global shutdown (all application
    /// ranks finished) — service ranks exit their pump loop on this.
    pub fn shutting_down(&self) -> bool {
        self.inner.global_done.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Drive progress for `dur` (service ranks / tests). Returns `Err(Killed)`
    /// if the rank was killed while pumping.
    pub fn pump(&mut self, dur: Duration) -> Result<()> {
        let deadline = Instant::now() + dur;
        block_until(&mut self.inner, self.ft.as_mut(), |_| Ok(Instant::now() >= deadline), "pump")
    }

    /// Internal: irecv with an already world-resolved source.
    pub(crate) fn irecv_resolved(
        &mut self,
        comm: CommId,
        src: Source,
        tag: TagSel,
    ) -> Result<RequestId> {
        self.inner.check_killed()?;
        let spec = RecvSpec { comm, src, tag, ident: self.inner.cur_ident };
        poll_all(&mut self.inner, self.ft.as_mut())?;
        let ft = &*self.ft;
        let admissible = |s: &RecvSpec, e: &crate::envelope::Envelope| ft.match_admissible(s, e);
        if let Some(arrived) = self.inner.engine.match_post(&spec, &admissible) {
            let req = self.inner.reqs.insert(ReqState::RecvPosted { spec });
            complete_match(&mut self.inner, req, arrived.env, arrived.body)?;
            Ok(req)
        } else {
            let req = self.inner.reqs.insert(ReqState::RecvPosted { spec });
            self.inner.engine.post(req, spec);
            Ok(req)
        }
    }
}
