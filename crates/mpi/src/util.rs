//! Small shared utilities.

/// FNV-1a 64-bit hash over a byte slice.
///
/// Used for payload digests in the determinism chains; not cryptographic.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_seeded(0xcbf29ce484222325, bytes)
}

/// FNV-1a continuation: fold `bytes` into an existing hash state.
pub fn fnv1a_seeded(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Fold a `u64` into a hash chain.
///
/// The state is multiplied by the FNV prime before folding, so the pairs
/// `(a, b)` and `(b, a)` hash differently (plain FNV would xor the first byte
/// straight into the state, making small swapped pairs collide).
pub fn chain_u64(h: u64, v: u64) -> u64 {
    fnv1a_seeded(h.wrapping_mul(0x100000001b3), &v.to_le_bytes())
}

/// A tiny xorshift PRNG for perturbation delays (self-contained so the
/// runtime's determinism does not depend on `rand`'s stream stability).
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeded constructor; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        XorShift64 { state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed } }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }

    /// Uniform value in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_deterministic_and_sensitive() {
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_ne!(chain_u64(1, 2), chain_u64(2, 1));
    }

    #[test]
    fn xorshift_basic() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn xorshift_zero_seed_ok() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn below_and_unit_in_range() {
        let mut r = XorShift64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
