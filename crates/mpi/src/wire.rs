//! A minimal, self-contained binary codec.
//!
//! Used for: checkpointed application state, fault-tolerance control message
//! bodies, and typed message payloads. We deliberately avoid pulling in a
//! serialization framework — the formats we need are tiny, and owning the
//! codec lets checkpoints and control traffic stay allocation-lean.
//!
//! Format: little-endian fixed-width integers; `Vec<T>`/`String` are a `u64`
//! length followed by elements; `Option<T>` is a `u8` discriminant followed by
//! the value if present. There is no schema evolution — both ends are always
//! the same binary.

use crate::error::{MpiError, Result};

/// Serialize a value into a fresh byte vector.
pub fn to_bytes<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    value.encode(&mut out);
    out
}

/// Deserialize a value from a byte slice, requiring full consumption.
pub fn from_bytes<T: Decode>(bytes: &[u8]) -> Result<T> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// Types that can be written to the wire.
pub trait Encode {
    /// Append this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Types that can be read back from the wire.
pub trait Decode: Sized {
    /// Decode a value from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;
}

/// Cursor over a byte slice with bounds-checked reads.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(MpiError::Codec(format!(
                "short read: want {n} bytes, have {}",
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Error unless the reader is fully consumed.
    pub fn finish(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(MpiError::Codec(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

macro_rules! impl_wire_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            #[inline]
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            #[inline]
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                let b = r.take(std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().unwrap()))
            }
        }
    )*};
}

impl_wire_int!(u8, u16, u32, u64, i8, i16, i32, i64, f32, f64);

impl Encode for usize {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
}
impl Decode for usize {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| MpiError::Codec("usize overflow".into()))
    }
}

impl Encode for bool {
    #[inline]
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}
impl Decode for bool {
    #[inline]
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            x => Err(MpiError::Codec(format!("bad bool {x}"))),
        }
    }
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize> {
    let len = usize::decode(r)?;
    // Defensive cap: an element is at least one byte on the wire, so a valid
    // length can never exceed what remains.
    if len > r.remaining() {
        return Err(MpiError::Codec(format!("length {len} exceeds remaining {}", r.remaining())));
    }
    Ok(len)
}

impl Encode for bytes::Bytes {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self);
    }
}
impl Decode for bytes::Bytes {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        Ok(bytes::Bytes::copy_from_slice(r.take(len)?))
    }
}

impl<T: Encode> Encode for [T] {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_slice().encode(out);
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let mut v = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            v.push(T::decode(r)?);
        }
        Ok(v)
    }
}

impl Encode for str {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_str().encode(out);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let len = decode_len(r)?;
        let b = r.take(len)?;
        String::from_utf8(b.to_vec()).map_err(|e| MpiError::Codec(e.to_string()))
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            x => Err(MpiError::Codec(format!("bad option tag {x}"))),
        }
    }
}

macro_rules! impl_wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, out: &mut Vec<u8>) {
                $(self.$idx.encode(out);)+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut Reader<'_>) -> Result<Self> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_wire_tuple!(A: 0);
impl_wire_tuple!(A: 0, B: 1);
impl_wire_tuple!(A: 0, B: 1, C: 2);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Encode for crate::types::RankId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for crate::types::RankId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(crate::types::RankId(u32::decode(r)?))
    }
}

impl Encode for crate::types::CommId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
}
impl Decode for crate::types::CommId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(crate::types::CommId(u64::decode(r)?))
    }
}

impl Encode for crate::types::MatchIdent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pattern.encode(out);
        self.iteration.encode(out);
    }
}
impl Decode for crate::types::MatchIdent {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(crate::types::MatchIdent { pattern: u32::decode(r)?, iteration: u32::decode(r)? })
    }
}

impl Encode for crate::types::ChannelId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.src.encode(out);
        self.dst.encode(out);
        self.comm.encode(out);
    }
}
impl Decode for crate::types::ChannelId {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(crate::types::ChannelId {
            src: Decode::decode(r)?,
            dst: Decode::decode(r)?,
            comm: Decode::decode(r)?,
        })
    }
}

/// Encode a `HashMap`-like sequence of key/value pairs deterministically
/// (sorted by key) — used by checkpoint serialization so identical states
/// produce identical bytes.
pub fn encode_map<K, V>(map: &std::collections::HashMap<K, V>, out: &mut Vec<u8>)
where
    K: Encode + Ord + Clone + Eq + std::hash::Hash,
    V: Encode,
{
    let mut keys: Vec<&K> = map.keys().collect();
    keys.sort();
    (keys.len() as u64).encode(out);
    for k in keys {
        k.encode(out);
        map[k].encode(out);
    }
}

/// Decode a map written by [`encode_map`].
pub fn decode_map<K, V>(r: &mut Reader<'_>) -> Result<std::collections::HashMap<K, V>>
where
    K: Decode + Eq + std::hash::Hash,
    V: Decode,
{
    let len = decode_len(r)?;
    let mut m = std::collections::HashMap::with_capacity(len.min(4096));
    for _ in 0..len {
        let k = K::decode(r)?;
        let v = V::decode(r)?;
        m.insert(k, v);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, CommId, MatchIdent, RankId};
    use std::collections::HashMap;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let b = to_bytes(&v);
        let back: T = from_bytes(&b).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn ints_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-1234567890123i64);
        roundtrip(std::f64::consts::PI);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip("hello wörld".to_string());
        roundtrip(Some(vec![1.5f64, -2.5]));
        roundtrip(Option::<u32>::None);
        roundtrip((RankId(3), CommId(1), 42u64));
    }

    #[test]
    fn domain_types_roundtrip() {
        roundtrip(RankId(17));
        roundtrip(MatchIdent::new(3, 99));
        roundtrip(ChannelId::new(RankId(1), RankId(2), CommId(5)));
    }

    #[test]
    fn map_roundtrip_is_deterministic() {
        let mut m = HashMap::new();
        m.insert(3u32, 30u64);
        m.insert(1u32, 10u64);
        m.insert(2u32, 20u64);
        let mut a = Vec::new();
        encode_map(&m, &mut a);
        let mut b = Vec::new();
        encode_map(&m, &mut b);
        assert_eq!(a, b);
        let back: HashMap<u32, u64> = {
            let mut r = Reader::new(&a);
            let m = decode_map(&mut r).unwrap();
            r.finish().unwrap();
            m
        };
        assert_eq!(back, m);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = to_bytes(&7u32);
        b.push(0);
        assert!(from_bytes::<u32>(&b).is_err());
    }

    #[test]
    fn short_read_rejected() {
        let b = to_bytes(&7u32);
        assert!(from_bytes::<u64>(&b).is_err());
    }

    #[test]
    fn hostile_length_rejected() {
        // A Vec<u8> claiming u64::MAX elements must not allocate.
        let b = to_bytes(&u64::MAX);
        assert!(from_bytes::<Vec<u8>>(&b).is_err());
    }

    #[test]
    fn bad_bool_and_option_tags_rejected() {
        assert!(from_bytes::<bool>(&[2]).is_err());
        assert!(from_bytes::<Option<u8>>(&[9]).is_err());
    }
}
