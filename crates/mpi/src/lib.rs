//! # mini-mpi
//!
//! A message-passing runtime with MPI semantics and a pluggable
//! fault-tolerance layer — the substrate of the SPBC reproduction.
//!
//! Why this exists: SPBC (SC'13) is implemented inside MPICH's matching
//! layer. Reproducing it in Rust against real MPI is impractical (bindings
//! expose no hook below the public API), so we built the message layer
//! itself. Ranks run as OS threads; channels are reliable and FIFO
//! (Section 3.1 of the paper); matching follows the MPI envelope rules with
//! posted/unexpected queues; large messages use an MPICH-style rendezvous
//! protocol, so match order and completion order can differ (footnote 1 of
//! the paper).
//!
//! Protocol integration happens through [`ft::FtLayer`]: every send, arrival,
//! match decision, control message and checkpoint flows through the hook.
//! SPBC itself lives in the `spbc-core` crate; baselines in `spbc-baselines`.
//!
//! ## Quick start
//!
//! ```
//! use mini_mpi::prelude::*;
//!
//! // Two ranks exchange a value and everyone returns a checksum.
//! let report = Runtime::run_native(2, |rank| {
//!     let me = rank.world_rank();
//!     if me == 0 {
//!         rank.send(COMM_WORLD, 1, 7, &[41.0f64])?;
//!         Ok(vec![])
//!     } else {
//!         let (data, st) = rank.recv::<f64>(COMM_WORLD, Source::Any, 7)?;
//!         assert_eq!(st.src, RankId(0));
//!         Ok(data[0].to_le_bytes().to_vec())
//!     }
//! })
//! .unwrap()
//! .ok()
//! .unwrap();
//! assert_eq!(report.outputs[1], 41.0f64.to_le_bytes().to_vec());
//! ```

#![warn(missing_docs)]

pub mod collectives;
pub mod config;
pub mod datatype;
pub mod envelope;
pub mod error;
pub mod failure;
pub mod ft;
pub mod hash;
pub(crate) mod inner;
pub mod matching;
pub mod rank;
pub mod recorder;
pub mod request;
pub mod router;
pub mod stats;
pub mod transport;
pub mod types;
pub mod util;
pub mod wire;

mod runtime;

pub use runtime::{AppFn, NodeOpts, RunBuilder, RunReport, Runtime};

/// The common imports workloads need.
pub mod prelude {
    pub use crate::config::{Perturb, RuntimeConfig, Topology, TransportKind};
    pub use crate::datatype::{ReduceOp, Scalar};
    pub use crate::error::{MpiError, Result};
    pub use crate::failure::{CkptHook, FailurePlan, FailureTrigger};
    pub use crate::rank::Rank;
    pub use crate::request::{RequestId, Status};
    pub use crate::runtime::{RunBuilder, RunReport, Runtime};
    pub use crate::types::{
        ChannelId, CommId, MatchIdent, RankId, Source, Tag, TagSel, COMM_WORLD,
    };
}
