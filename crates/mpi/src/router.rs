//! The transport fabric: one mailbox per rank, swappable on restart.
//!
//! Each rank owns the receiving end of an unbounded channel; every peer holds
//! the `Router` and pushes packets through the sender slot. Crossbeam channels
//! preserve per-producer order, which gives exactly MPI's per-channel FIFO
//! guarantee.
//!
//! When a rank is restarted during recovery its old mailbox (and anything
//! still inside — conceptually "in flight at the moment of the crash") is
//! dropped and the slot is repointed at a fresh channel. Packets sent to a
//! dead slot are silently discarded, like packets on a wire to a crashed
//! node; the protocol layer is responsible for regenerating them (that is
//! what the sender-side log is for).

use crate::envelope::Packet;
use crossbeam_channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use crate::types::RankId;

/// Shared routing table.
pub struct Router {
    slots: Vec<RwLock<Sender<Packet>>>,
}

impl Router {
    /// Create a router with `n` mailboxes, returning the receiving ends.
    pub fn new(n: usize) -> (Router, Vec<Receiver<Packet>>) {
        let mut slots = Vec::with_capacity(n);
        let mut rxs = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            slots.push(RwLock::new(tx));
            rxs.push(rx);
        }
        (Router { slots }, rxs)
    }

    /// Number of mailboxes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the router has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Deliver a packet to `dst`'s mailbox. Packets to dead ranks are
    /// discarded (returns `false`).
    pub fn send(&self, dst: RankId, pkt: Packet) -> bool {
        let Some(slot) = self.slots.get(dst.idx()) else {
            return false;
        };
        slot.read().send(pkt).is_ok()
    }

    /// Replace `rank`'s mailbox with a fresh channel (restart), returning the
    /// new receiving end. Anything queued in the old mailbox is dropped.
    pub fn replace(&self, rank: RankId) -> Receiver<Packet> {
        let (tx, rx) = unbounded();
        *self.slots[rank.idx()].write() = tx;
        rx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{CtrlMsg, Packet};
    use bytes::Bytes;

    fn ctrl(kind: u16) -> Packet {
        Packet::Ctrl(CtrlMsg { from: RankId(0), kind, data: Bytes::new() })
    }

    #[test]
    fn send_and_receive() {
        let (router, rxs) = Router::new(2);
        assert!(router.send(RankId(1), ctrl(7)));
        match rxs[1].try_recv().unwrap() {
            Packet::Ctrl(c) => assert_eq!(c.kind, 7),
            _ => panic!("wrong packet"),
        }
    }

    #[test]
    fn send_to_unknown_rank_discarded() {
        let (router, _rxs) = Router::new(1);
        assert!(!router.send(RankId(5), ctrl(0)));
    }

    #[test]
    fn replace_drops_old_traffic() {
        let (router, rxs) = Router::new(1);
        router.send(RankId(0), ctrl(1));
        let fresh = router.replace(RankId(0));
        // Old receiver still has the old packet; new one starts clean.
        assert!(rxs[0].try_recv().is_ok());
        assert!(fresh.try_recv().is_err());
        router.send(RankId(0), ctrl(2));
        match fresh.try_recv().unwrap() {
            Packet::Ctrl(c) => assert_eq!(c.kind, 2),
            _ => panic!("wrong packet"),
        }
    }

    #[test]
    fn send_after_receiver_drop_is_discarded() {
        let (router, rxs) = Router::new(1);
        drop(rxs);
        assert!(!router.send(RankId(0), ctrl(0)));
    }

    #[test]
    fn per_producer_fifo() {
        let (router, rxs) = Router::new(1);
        for k in 0..100 {
            router.send(RankId(0), ctrl(k));
        }
        for k in 0..100 {
            match rxs[0].try_recv().unwrap() {
                Packet::Ctrl(c) => assert_eq!(c.kind, k),
                _ => panic!(),
            }
        }
    }
}
