//! The routing table: a thin façade over the run's [`Transport`].
//!
//! Each rank owns a [`Mailbox`]; every peer holds the `Router` and pushes
//! packets through the transport's per-rank slot. The fabric guarantees
//! MPI's per-channel FIFO ordering and drops packets addressed to dead
//! slots — see the [`crate::transport`] contract.
//!
//! When a rank is restarted during recovery its old mailbox (and anything
//! still inside — conceptually "in flight at the moment of the crash") is
//! dropped and the slot is repointed at a fresh mailbox. Packets sent to a
//! dead slot are silently discarded, like packets on a wire to a crashed
//! node; the protocol layer is responsible for regenerating them (that is
//! what the sender-side log is for).

use crate::envelope::Packet;
use crate::transport::{InProcTransport, Mailbox, Transport};
use crate::types::RankId;
use std::sync::Arc;

/// Shared routing table over a pluggable transport.
pub struct Router {
    transport: Arc<dyn Transport>,
}

impl Router {
    /// Create an in-process router with `n` mailboxes, returning the
    /// receiving ends (convenience for the default fabric).
    pub fn new(n: usize) -> (Router, Vec<Box<dyn Mailbox>>) {
        let transport = Arc::new(InProcTransport::new(n));
        let mailboxes = (0..n).map(|i| transport.open(RankId(i as u32))).collect();
        (Router { transport }, mailboxes)
    }

    /// A router over an existing transport.
    pub fn over(transport: Arc<dyn Transport>) -> Router {
        Router { transport }
    }

    /// The transport behind this router.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// Number of mailboxes.
    pub fn len(&self) -> usize {
        self.transport.ranks()
    }

    /// True when the router has no slots.
    pub fn is_empty(&self) -> bool {
        self.transport.ranks() == 0
    }

    /// Deliver a packet to `dst`'s mailbox. Packets to dead ranks are
    /// discarded (returns `false`).
    pub fn send(&self, dst: RankId, pkt: Packet) -> bool {
        self.transport.send(dst, pkt)
    }

    /// Replace `rank`'s mailbox with a fresh one (restart), returning the
    /// new receiving end. Anything queued in the old mailbox is dropped.
    pub fn replace(&self, rank: RankId) -> Box<dyn Mailbox> {
        self.transport.replace(rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::{CtrlMsg, Packet};
    use bytes::Bytes;

    fn ctrl(kind: u16) -> Packet {
        Packet::Ctrl(CtrlMsg { from: RankId(0), kind, data: Bytes::new() })
    }

    #[test]
    fn send_and_receive() {
        let (router, rxs) = Router::new(2);
        assert!(router.send(RankId(1), ctrl(7)));
        match rxs[1].try_recv().unwrap() {
            Packet::Ctrl(c) => assert_eq!(c.kind, 7),
            _ => panic!("wrong packet"),
        }
    }

    #[test]
    fn send_to_unknown_rank_discarded() {
        let (router, _rxs) = Router::new(1);
        assert!(!router.send(RankId(5), ctrl(0)));
    }

    #[test]
    fn replace_drops_old_traffic() {
        let (router, rxs) = Router::new(1);
        router.send(RankId(0), ctrl(1));
        let fresh = router.replace(RankId(0));
        // Old receiver still has the old packet; new one starts clean.
        assert!(rxs[0].try_recv().is_some());
        assert!(fresh.try_recv().is_none());
        router.send(RankId(0), ctrl(2));
        match fresh.try_recv().unwrap() {
            Packet::Ctrl(c) => assert_eq!(c.kind, 2),
            _ => panic!("wrong packet"),
        }
    }

    #[test]
    fn send_after_receiver_drop_is_discarded() {
        let (router, rxs) = Router::new(1);
        drop(rxs);
        assert!(!router.send(RankId(0), ctrl(0)));
    }

    #[test]
    fn per_producer_fifo() {
        let (router, rxs) = Router::new(1);
        for k in 0..100 {
            router.send(RankId(0), ctrl(k));
        }
        for k in 0..100 {
            match rxs[0].try_recv().unwrap() {
                Packet::Ctrl(c) => assert_eq!(c.kind, k),
                _ => panic!(),
            }
        }
    }
}
