//! Per-rank communication statistics and determinism chains.

use crate::types::{ChannelId, RankId};
use crate::util::{chain_u64, fnv1a};
use std::collections::HashMap;
use std::time::Duration;

/// Rolling hash + count capturing the ordered sequence of sends somewhere
/// (per channel or per process). Two executions produced the same send
/// sequence iff both `hash` and `count` agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SendChain {
    /// Folded FNV-1a hash over `(tag, plen, payload digest, ident)` tuples.
    pub hash: u64,
    /// Number of sends folded in.
    pub count: u64,
}

impl SendChain {
    /// Fold one send into the chain.
    pub fn push(&mut self, tag: u32, plen: u64, payload_digest: u64, ident: (u32, u32)) {
        let mut h = if self.count == 0 { 0xcbf29ce484222325 } else { self.hash };
        h = chain_u64(h, tag as u64);
        h = chain_u64(h, plen);
        h = chain_u64(h, payload_digest);
        h = chain_u64(h, ((ident.0 as u64) << 32) | ident.1 as u64);
        self.hash = h;
        self.count += 1;
    }
}

/// Statistics collected by one rank during one execution.
///
/// Byte/message counters are indexed by *peer world rank* (dense vectors —
/// the clustering tool consumes them as a communication matrix). Determinism
/// chains are per channel and per process (Definitions 1 and 2 of the paper).
#[derive(Clone, Debug)]
pub struct RankStats {
    /// This rank.
    pub me: RankId,
    /// Bytes sent to each peer (application payloads, incl. collectives).
    pub sent_bytes: Vec<u64>,
    /// Messages sent to each peer.
    pub sent_msgs: Vec<u64>,
    /// Bytes received from each peer.
    pub recv_bytes: Vec<u64>,
    /// Messages received from each peer.
    pub recv_msgs: Vec<u64>,
    /// Time spent inside blocking communication calls.
    pub comm_time: Duration,
    /// Wall-clock of the rank's whole execution (filled by the runtime).
    pub total_time: Duration,
    /// Per-channel send chains (channel-determinism witness).
    pub channel_chains: HashMap<ChannelId, SendChain>,
    /// Per-process send chain over all channels in program order
    /// (send-determinism witness).
    pub process_chain: SendChain,
    /// Number of times this rank was restarted by recovery.
    pub restarts: u32,
    /// When true (the default), sends fold an FNV-1a digest of the payload
    /// into the determinism chains. Turning it off (see
    /// `RuntimeConfig::payload_digests`) takes payload hashing out of the
    /// send path; the chains then witness only `(tag, plen, ident)` order.
    pub digest_payloads: bool,
}

impl RankStats {
    /// Fresh statistics for rank `me` in a world of `world` ranks.
    pub fn new(me: RankId, world: usize) -> Self {
        RankStats {
            me,
            sent_bytes: vec![0; world],
            sent_msgs: vec![0; world],
            recv_bytes: vec![0; world],
            recv_msgs: vec![0; world],
            comm_time: Duration::ZERO,
            total_time: Duration::ZERO,
            channel_chains: HashMap::new(),
            process_chain: SendChain::default(),
            restarts: 0,
            digest_payloads: true,
        }
    }

    /// Record a send of `payload` on `chan` with the given tag and ident.
    pub fn on_send(&mut self, chan: ChannelId, tag: u32, payload: &[u8], ident: (u32, u32)) {
        let peer = chan.dst.idx();
        if peer < self.sent_bytes.len() {
            self.sent_bytes[peer] += payload.len() as u64;
            self.sent_msgs[peer] += 1;
        }
        // Digest once, fold into both chains. Gated: executions compared by a
        // determinism checker must agree on the flag or their chains diverge
        // trivially.
        let digest = if self.digest_payloads { fnv1a(payload) } else { 0 };
        self.channel_chains.entry(chan).or_default().push(tag, payload.len() as u64, digest, ident);
        self.process_chain.push(tag, payload.len() as u64, digest, ident);
    }

    /// Record delivery of a message of `len` bytes from `src`.
    pub fn on_recv(&mut self, src: RankId, len: usize) {
        let peer = src.idx();
        if peer < self.recv_bytes.len() {
            self.recv_bytes[peer] += len as u64;
            self.recv_msgs[peer] += 1;
        }
    }

    /// Total bytes sent to any peer.
    pub fn total_sent_bytes(&self) -> u64 {
        self.sent_bytes.iter().sum()
    }

    /// Total messages sent.
    pub fn total_sent_msgs(&self) -> u64 {
        self.sent_msgs.iter().sum()
    }

    /// Fraction of total time spent communicating (0 when total unknown).
    pub fn comm_ratio(&self) -> f64 {
        if self.total_time.is_zero() {
            0.0
        } else {
            self.comm_time.as_secs_f64() / self.total_time.as_secs_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ChannelId, COMM_WORLD};

    fn chan(src: u32, dst: u32) -> ChannelId {
        ChannelId::new(RankId(src), RankId(dst), COMM_WORLD)
    }

    #[test]
    fn chains_detect_reorder() {
        let mut a = SendChain::default();
        a.push(1, 4, 0xAA, (0, 0));
        a.push(2, 4, 0xBB, (0, 0));
        let mut b = SendChain::default();
        b.push(2, 4, 0xBB, (0, 0));
        b.push(1, 4, 0xAA, (0, 0));
        assert_ne!(a, b);
        assert_eq!(a.count, b.count);
    }

    #[test]
    fn chains_equal_for_equal_sequences() {
        let mut a = SendChain::default();
        let mut b = SendChain::default();
        for i in 0..10 {
            a.push(i, 8, i as u64 * 3, (1, i));
            b.push(i, 8, i as u64 * 3, (1, i));
        }
        assert_eq!(a, b);
    }

    #[test]
    fn per_channel_vs_per_process() {
        // Same per-channel sequences, different global interleaving:
        // channel chains equal, process chains differ (the AMG situation).
        let mut s1 = RankStats::new(RankId(0), 4);
        s1.on_send(chan(0, 1), 1, b"x", (0, 0));
        s1.on_send(chan(0, 2), 1, b"y", (0, 0));
        let mut s2 = RankStats::new(RankId(0), 4);
        s2.on_send(chan(0, 2), 1, b"y", (0, 0));
        s2.on_send(chan(0, 1), 1, b"x", (0, 0));
        assert_eq!(s1.channel_chains, s2.channel_chains);
        assert_ne!(s1.process_chain, s2.process_chain);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = RankStats::new(RankId(0), 2);
        s.on_send(chan(0, 1), 9, &[0u8; 100], (0, 0));
        s.on_send(chan(0, 1), 9, &[0u8; 50], (0, 0));
        s.on_recv(RankId(1), 25);
        assert_eq!(s.sent_bytes[1], 150);
        assert_eq!(s.sent_msgs[1], 2);
        assert_eq!(s.recv_bytes[1], 25);
        assert_eq!(s.total_sent_bytes(), 150);
        assert_eq!(s.total_sent_msgs(), 2);
    }

    #[test]
    fn comm_ratio_zero_when_no_total() {
        let s = RankStats::new(RankId(0), 1);
        assert_eq!(s.comm_ratio(), 0.0);
    }

    #[test]
    fn digest_gate_changes_chain_but_not_counts() {
        let mut with = RankStats::new(RankId(0), 2);
        let mut without = RankStats::new(RankId(0), 2);
        without.digest_payloads = false;
        with.on_send(chan(0, 1), 1, b"payload", (0, 0));
        without.on_send(chan(0, 1), 1, b"payload", (0, 0));
        assert_ne!(with.process_chain, without.process_chain);
        assert_eq!(with.process_chain.count, without.process_chain.count);
        assert_eq!(with.sent_bytes, without.sent_bytes);
        // Ungated chains still witness order: a reorder flips the hash even
        // with digesting off.
        let mut a = RankStats::new(RankId(0), 3);
        let mut b = RankStats::new(RankId(0), 3);
        a.digest_payloads = false;
        b.digest_payloads = false;
        a.on_send(chan(0, 1), 1, b"x", (0, 0));
        a.on_send(chan(0, 1), 2, b"x", (0, 0));
        b.on_send(chan(0, 1), 2, b"x", (0, 0));
        b.on_send(chan(0, 1), 1, b"x", (0, 0));
        assert_ne!(a.channel_chains, b.channel_chains);
    }
}
