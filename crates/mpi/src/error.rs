//! Error types for the runtime.

use crate::types::RankId;
use std::fmt;

/// Errors surfaced by MPI-like operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// The rank was killed by the failure controller (crash injection) or is
    /// being torn down so its cluster can roll back. Application code must
    /// propagate this error (`?`) so the runtime can take over.
    Killed,
    /// A blocking operation exceeded the configured deadlock timeout.
    DeadlockSuspected(String),
    /// An argument was invalid (bad rank, reserved tag, unknown request, ...).
    InvalidArgument(String),
    /// The operation is not legal in the current state (e.g. checkpoint with
    /// outstanding requests).
    InvalidState(String),
    /// Decoding a wire payload failed.
    Codec(String),
    /// A peer is unreachable (should not happen in a healthy run).
    Disconnected(RankId),
    /// Error reported by the application itself.
    App(String),
}

impl MpiError {
    /// Convenience constructor for invalid-argument errors.
    pub fn invalid(msg: impl Into<String>) -> Self {
        MpiError::InvalidArgument(msg.into())
    }

    /// Convenience constructor for application errors.
    pub fn app(msg: impl Into<String>) -> Self {
        MpiError::App(msg.into())
    }

    /// True if this error is the crash-injection signal.
    pub fn is_killed(&self) -> bool {
        matches!(self, MpiError::Killed)
    }
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Killed => write!(f, "rank killed (failure injection / rollback)"),
            MpiError::DeadlockSuspected(w) => write!(f, "deadlock suspected: {w}"),
            MpiError::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            MpiError::InvalidState(m) => write!(f, "invalid state: {m}"),
            MpiError::Codec(m) => write!(f, "codec error: {m}"),
            MpiError::Disconnected(r) => write!(f, "rank {r} disconnected"),
            MpiError::App(m) => write!(f, "application error: {m}"),
        }
    }
}

impl std::error::Error for MpiError {}

/// Result alias used across the runtime.
pub type Result<T> = std::result::Result<T, MpiError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MpiError::Killed.to_string().contains("killed"));
        assert!(MpiError::invalid("tag too big").to_string().contains("tag too big"));
        assert!(MpiError::Disconnected(RankId(4)).to_string().contains('4'));
    }

    #[test]
    fn killed_predicate() {
        assert!(MpiError::Killed.is_killed());
        assert!(!MpiError::app("x").is_killed());
    }
}
