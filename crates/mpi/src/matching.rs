//! The message-matching engine: posted-receive queue and unexpected-message
//! queue, with MPI ordering semantics.
//!
//! * An arriving envelope matches the **first** posted request (in post
//!   order) that accepts it.
//! * A newly posted request matches the **first** unexpected envelope (in
//!   arrival order) that it accepts.
//!
//! Per-channel FIFO is provided by the transport (one mailbox per rank,
//! per-producer order preserved), so two messages on the same channel are
//! always considered in send order — the guarantee Section 3.2 relies on.
//!
//! Admissibility is the base `(comm, src, tag)` check **and** a pluggable
//! predicate supplied by the fault-tolerance layer (SPBC adds
//! `(pattern_id, iteration_id)` equality there).
//!
//! # Indexing
//!
//! Both queues are **channel-indexed** rather than linear. Envelopes always
//! carry a concrete `(comm, src, tag)`, so the unexpected queue buckets by
//! that triple; posted requests bucket the same way when fully concrete,
//! with wildcard (`MPI_ANY_SOURCE` / `MPI_ANY_TAG`) requests on a separate
//! side-list. Every entry carries a stamp from a global monotonic counter
//! (post order / arrival order), so MPI's cross-queue ordering reduces to
//! comparing the best in-bucket candidate with the best wildcard-list
//! candidate and taking the smaller stamp. The FT admissibility predicate
//! only ever scans inside a candidate bucket (entries there already pass the
//! base `(comm, src, tag)` check), which keeps SPBC's pattern-ID veto from
//! degrading lookups to full-queue scans. Exact-match traffic — the common
//! case for stencil and collective traffic — costs O(1) hash lookup plus the
//! (normally empty) veto scan, independent of queue depth; see
//! `reference::ReferenceMatchEngine` for the semantics oracle and
//! `crates/mpi/tests/proptest_matching.rs` for the differential test.

use crate::envelope::Envelope;
use crate::hash::FxHashMap;
use crate::request::{RecvSpec, RequestId};
use crate::types::{CommId, RankId, Source, Tag, TagSel};
use bytes::Bytes;
use std::collections::VecDeque;

/// Payload-or-placeholder of an arrived envelope.
#[derive(Clone, Debug)]
pub enum ArrivedBody {
    /// Full eager message: payload is here.
    Eager(Bytes),
    /// Rendezvous announcement: payload still at the sender; `token`
    /// identifies the sender-side pending transfer to CTS.
    Rts {
        /// Sender-side transfer token.
        token: u64,
    },
}

/// An arrived-but-unmatched message (the "unexpected queue" entry).
#[derive(Clone, Debug)]
pub struct Arrived {
    /// Envelope of the message.
    pub env: Envelope,
    /// Eager payload or rendezvous placeholder.
    pub body: ArrivedBody,
}

impl Arrived {
    /// True when the payload has not arrived yet (pending rendezvous).
    pub fn is_pending_rts(&self) -> bool {
        matches!(self.body, ArrivedBody::Rts { .. })
    }
}

/// Exact-match bucket key: every envelope's concrete coordinates.
type ChanKey = (CommId, RankId, Tag);

/// A posted receive plus its position in global post order.
struct PostedEntry {
    stamp: u64,
    entry: (RequestId, RecvSpec),
}

/// An unexpected arrival plus its position in global arrival order.
struct UnexpEntry {
    stamp: u64,
    arrived: Arrived,
}

/// Midpoint of the stamp space: normal posts count up from here, re-posts at
/// the front (`post_front`) count down, so a front-posted request outranks
/// everything already queued without renumbering.
const STAMP_ORIGIN: u64 = 1 << 63;

/// The matching engine state for one rank.
pub struct MatchEngine {
    /// Fully concrete posted receives, bucketed by `(comm, src, tag)`; each
    /// bucket is stamp-ordered.
    posted_exact: FxHashMap<ChanKey, VecDeque<PostedEntry>>,
    /// Posted receives with a source or tag wildcard, stamp-ordered.
    posted_wild: VecDeque<PostedEntry>,
    posted_count: usize,
    /// Stamp for the next `post` (counts up from [`STAMP_ORIGIN`]).
    next_post_back: u64,
    /// Stamp for the next `post_front` (counts down from [`STAMP_ORIGIN`]).
    next_post_front: u64,
    /// Unexpected arrivals bucketed by `(comm, src, tag)`; stamp-ordered.
    unexpected: FxHashMap<ChanKey, VecDeque<UnexpEntry>>,
    unexpected_count: usize,
    next_arrival: u64,
}

impl Default for MatchEngine {
    fn default() -> Self {
        MatchEngine {
            posted_exact: FxHashMap::default(),
            posted_wild: VecDeque::new(),
            posted_count: 0,
            next_post_back: STAMP_ORIGIN,
            next_post_front: STAMP_ORIGIN,
            unexpected: FxHashMap::default(),
            unexpected_count: 0,
            next_arrival: 0,
        }
    }
}

impl MatchEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact bucket a fully concrete spec belongs to, if it is one.
    fn exact_key(spec: &RecvSpec) -> Option<ChanKey> {
        match (spec.src, spec.tag) {
            (Source::Rank(src), TagSel::Tag(tag)) => Some((spec.comm, src, tag)),
            _ => None,
        }
    }

    /// Try to match an arriving envelope against the posted queue.
    ///
    /// On a match the posted entry is removed and its request id returned; the
    /// caller completes / CTSes the request. On no match the caller must push
    /// the arrival via [`MatchEngine::push_unexpected`].
    pub fn match_arrival(
        &mut self,
        env: &Envelope,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<RequestId> {
        let key = (env.comm, env.src, env.tag);
        let wild_cand: Option<(u64, usize)> = self
            .posted_wild
            .iter()
            .enumerate()
            .find(|(_, e)| e.entry.1.accepts(env) && admissible(&e.entry.1, env))
            .map(|(i, e)| (e.stamp, i));
        // One bucket probe: bucket entries pass the base check by
        // construction, only the FT predicate can veto. "First posted that
        // accepts" = the smaller stamp of the bucket and wildcard candidates
        // (every accepting entry lives in exactly one of them). An emptied
        // bucket is kept — its capacity is reused by the next post on the
        // same channel, and map size stays bounded by the channels in use.
        if let Some(bucket) = self.posted_exact.get_mut(&key) {
            if let Some((idx, stamp)) = bucket
                .iter()
                .enumerate()
                .find(|(_, e)| admissible(&e.entry.1, env))
                .map(|(i, e)| (i, e.stamp))
            {
                if wild_cand.is_none_or(|(ws, _)| stamp < ws) {
                    let e = bucket.remove(idx).expect("index valid");
                    self.posted_count -= 1;
                    return Some(e.entry.0);
                }
            }
        }
        let (_, idx) = wild_cand?;
        let e = self.posted_wild.remove(idx).expect("index valid");
        self.posted_count -= 1;
        Some(e.entry.0)
    }

    /// Queue an arrival that matched nothing.
    pub fn push_unexpected(&mut self, arrived: Arrived) {
        let key = (arrived.env.comm, arrived.env.src, arrived.env.tag);
        let stamp = self.next_arrival;
        self.next_arrival += 1;
        self.unexpected.entry(key).or_default().push_back(UnexpEntry { stamp, arrived });
        self.unexpected_count += 1;
    }

    /// First admissible unexpected entry for `spec`: `(bucket key, index in
    /// bucket, stamp)` of the earliest arrival that matches.
    fn find_unexpected(
        &self,
        spec: &RecvSpec,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<(ChanKey, usize, u64)> {
        if let Some(key) = Self::exact_key(spec) {
            // One bucket holds every acceptable envelope.
            let bucket = self.unexpected.get(&key)?;
            return bucket
                .iter()
                .enumerate()
                .find(|(_, e)| admissible(spec, &e.arrived.env))
                .map(|(i, e)| (key, i, e.stamp));
        }
        // Wildcard spec: the earliest admissible entry of each acceptable
        // bucket competes; "first arrived that it accepts" is the global
        // minimum stamp. Costs O(#channels) bucket probes, not O(#messages).
        let mut best: Option<(ChanKey, usize, u64)> = None;
        for (&key, bucket) in &self.unexpected {
            let (comm, src, tag) = key;
            if comm != spec.comm || !spec.src.accepts(src) || !spec.tag.accepts(tag) {
                continue;
            }
            if let Some((i, e)) =
                bucket.iter().enumerate().find(|(_, e)| admissible(spec, &e.arrived.env))
            {
                if best.is_none_or(|(_, _, s)| e.stamp < s) {
                    best = Some((key, i, e.stamp));
                }
            }
        }
        best
    }

    /// Try to match a newly posted request against the unexpected queue.
    ///
    /// On a match the unexpected entry is removed and returned; the caller
    /// completes / CTSes. On no match the caller must post the request via
    /// [`MatchEngine::post`].
    pub fn match_post(
        &mut self,
        spec: &RecvSpec,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<Arrived> {
        let (key, idx, _) = self.find_unexpected(spec, admissible)?;
        let bucket = self.unexpected.get_mut(&key).expect("bucket exists");
        let entry = bucket.remove(idx).expect("index valid");
        self.unexpected_count -= 1;
        Some(entry.arrived)
    }

    /// Append a request to the posted queue.
    pub fn post(&mut self, id: RequestId, spec: RecvSpec) {
        let stamp = self.next_post_back;
        self.next_post_back += 1;
        let entry = PostedEntry { stamp, entry: (id, spec) };
        match Self::exact_key(&spec) {
            Some(key) => self.posted_exact.entry(key).or_default().push_back(entry),
            None => self.posted_wild.push_back(entry),
        }
        self.posted_count += 1;
    }

    /// Re-post a request at the *front* of the posted queue — used when a
    /// matched rendezvous receive must be re-armed because the sender died
    /// before shipping the payload; front placement preserves its original
    /// matching priority.
    pub fn post_front(&mut self, id: RequestId, spec: RecvSpec) {
        self.next_post_front -= 1;
        let entry = PostedEntry { stamp: self.next_post_front, entry: (id, spec) };
        match Self::exact_key(&spec) {
            Some(key) => self.posted_exact.entry(key).or_default().push_front(entry),
            None => self.posted_wild.push_front(entry),
        }
        self.posted_count += 1;
    }

    /// Remove and return all pending-rendezvous (RTS) unexpected entries from
    /// `src` — their tokens dangle once the sender has been restarted.
    /// Returned envelopes are in arrival order.
    pub fn purge_rts_from(&mut self, src: RankId) -> Vec<Envelope> {
        let mut purged: Vec<(u64, Envelope)> = Vec::new();
        self.unexpected.retain(|&(_, bsrc, _), bucket| {
            if bsrc != src {
                return true;
            }
            bucket.retain(|e| {
                if e.arrived.is_pending_rts() {
                    purged.push((e.stamp, e.arrived.env));
                    false
                } else {
                    true
                }
            });
            !bucket.is_empty()
        });
        self.unexpected_count -= purged.len();
        purged.sort_by_key(|&(stamp, _)| stamp);
        purged.into_iter().map(|(_, env)| env).collect()
    }

    /// A fresh RTS arrived for a channel message whose earlier announcement
    /// is still queued unexpected: swap in the new token and return the stale
    /// one. The sender cancels outbound rendezvous when it learns the
    /// receiver restarted, then re-sends the payload from its log — so when
    /// both announcements reached the *same* incarnation, the earlier token
    /// is the dead one.
    pub fn rebind_rts(&mut self, env: &Envelope, token: u64) -> Option<u64> {
        let key = (env.comm, env.src, env.tag);
        let bucket = self.unexpected.get_mut(&key)?;
        for e in bucket.iter_mut() {
            if e.arrived.env.seqnum == env.seqnum {
                if let ArrivedBody::Rts { token: old } = &mut e.arrived.body {
                    let stale = *old;
                    *old = token;
                    return Some(stale);
                }
            }
        }
        None
    }

    /// Probe: first unexpected envelope matching `spec` (in arrival order),
    /// without removing it.
    pub fn probe(
        &self,
        spec: &RecvSpec,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<&Envelope> {
        let (key, idx, _) = self.find_unexpected(spec, admissible)?;
        Some(&self.unexpected[&key][idx].arrived.env)
    }

    /// Number of posted, unmatched receive requests.
    pub fn posted_len(&self) -> usize {
        self.posted_count
    }

    /// Number of unexpected messages queued.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected_count
    }

    /// Iterate the posted queue in post order (diagnostics).
    pub fn posted_iter(&self) -> impl Iterator<Item = &(RequestId, RecvSpec)> {
        let mut all: Vec<&PostedEntry> =
            self.posted_exact.values().flatten().chain(self.posted_wild.iter()).collect();
        all.sort_by_key(|e| e.stamp);
        all.into_iter().map(|e| &e.entry)
    }

    /// Iterate the unexpected queue in arrival order (checkpoint
    /// serialization — restore depends on this order).
    pub fn unexpected_iter(&self) -> impl Iterator<Item = &Arrived> {
        let mut all: Vec<&UnexpEntry> = self.unexpected.values().flatten().collect();
        all.sort_by_key(|e| e.stamp);
        all.into_iter().map(|e| &e.arrived)
    }

    /// Replace the unexpected queue wholesale (checkpoint restore). `entries`
    /// must be in arrival order, as produced by
    /// [`MatchEngine::unexpected_iter`].
    pub fn restore_unexpected(&mut self, entries: Vec<Arrived>) {
        self.unexpected.clear();
        self.unexpected_count = entries.len();
        self.next_arrival = 0;
        for arrived in entries {
            let key = (arrived.env.comm, arrived.env.src, arrived.env.tag);
            let stamp = self.next_arrival;
            self.next_arrival += 1;
            self.unexpected.entry(key).or_default().push_back(UnexpEntry { stamp, arrived });
        }
    }

    /// Drop all posted requests and unexpected messages (rank teardown).
    pub fn clear(&mut self) {
        self.posted_exact.clear();
        self.posted_wild.clear();
        self.posted_count = 0;
        self.next_post_back = STAMP_ORIGIN;
        self.next_post_front = STAMP_ORIGIN;
        self.unexpected.clear();
        self.unexpected_count = 0;
        self.next_arrival = 0;
    }
}

pub mod reference {
    //! The pre-index linear matching engine, kept verbatim as the semantics
    //! oracle: `tests/proptest_matching.rs` feeds it and [`MatchEngine`]
    //! identical random streams and requires identical decisions in identical
    //! order. Not for production use — every operation is O(queue length).

    use super::{Arrived, Envelope, RecvSpec, RequestId};
    use crate::types::RankId;
    use std::collections::VecDeque;

    /// Linear-scan matching engine (the original implementation).
    #[derive(Default)]
    pub struct ReferenceMatchEngine {
        posted: VecDeque<(RequestId, RecvSpec)>,
        unexpected: VecDeque<Arrived>,
    }

    impl ReferenceMatchEngine {
        /// Empty engine.
        pub fn new() -> Self {
            Self::default()
        }

        /// Linear-scan equivalent of [`super::MatchEngine::match_arrival`].
        pub fn match_arrival(
            &mut self,
            env: &Envelope,
            admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
        ) -> Option<RequestId> {
            let pos = self
                .posted
                .iter()
                .position(|(_, spec)| spec.accepts(env) && admissible(spec, env))?;
            let (id, _) = self.posted.remove(pos).expect("position valid");
            Some(id)
        }

        /// Linear-scan equivalent of [`super::MatchEngine::push_unexpected`].
        pub fn push_unexpected(&mut self, arrived: Arrived) {
            self.unexpected.push_back(arrived);
        }

        /// Linear-scan equivalent of [`super::MatchEngine::match_post`].
        pub fn match_post(
            &mut self,
            spec: &RecvSpec,
            admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
        ) -> Option<Arrived> {
            let pos = self
                .unexpected
                .iter()
                .position(|a| spec.accepts(&a.env) && admissible(spec, &a.env))?;
            self.unexpected.remove(pos)
        }

        /// Linear-scan equivalent of [`super::MatchEngine::post`].
        pub fn post(&mut self, id: RequestId, spec: RecvSpec) {
            self.posted.push_back((id, spec));
        }

        /// Linear-scan equivalent of [`super::MatchEngine::post_front`].
        pub fn post_front(&mut self, id: RequestId, spec: RecvSpec) {
            self.posted.push_front((id, spec));
        }

        /// Linear-scan equivalent of [`super::MatchEngine::purge_rts_from`].
        pub fn purge_rts_from(&mut self, src: RankId) -> Vec<Envelope> {
            let mut purged = Vec::new();
            self.unexpected.retain(|a| {
                if a.is_pending_rts() && a.env.src == src {
                    purged.push(a.env);
                    false
                } else {
                    true
                }
            });
            purged
        }

        /// Linear-scan equivalent of [`super::MatchEngine::probe`].
        pub fn probe(
            &self,
            spec: &RecvSpec,
            admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
        ) -> Option<&Envelope> {
            self.unexpected
                .iter()
                .find(|a| spec.accepts(&a.env) && admissible(spec, &a.env))
                .map(|a| &a.env)
        }

        /// Number of posted, unmatched receive requests.
        pub fn posted_len(&self) -> usize {
            self.posted.len()
        }

        /// Number of unexpected messages queued.
        pub fn unexpected_len(&self) -> usize {
            self.unexpected.len()
        }

        /// Iterate the unexpected queue in arrival order.
        pub fn unexpected_iter(&self) -> impl Iterator<Item = &Arrived> {
            self.unexpected.iter()
        }

        /// Replace the unexpected queue wholesale.
        pub fn restore_unexpected(&mut self, entries: Vec<Arrived>) {
            self.unexpected = entries.into();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CommId, MatchIdent, RankId, Source, TagSel, COMM_WORLD};

    fn env(src: u32, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src: RankId(src),
            dst: RankId(0),
            comm: COMM_WORLD,
            tag,
            seqnum: seq,
            plen: 0,
            lamport: 0,
            ident: MatchIdent::DEFAULT,
        }
    }

    fn spec(src: Source, tag: TagSel) -> RecvSpec {
        RecvSpec { comm: COMM_WORLD, src, tag, ident: MatchIdent::DEFAULT }
    }

    fn all(_: &RecvSpec, _: &Envelope) -> bool {
        true
    }

    fn arrived(env: Envelope) -> Arrived {
        Arrived { env, body: ArrivedBody::Eager(Bytes::new()) }
    }

    #[test]
    fn arrival_matches_first_posted_in_post_order() {
        let mut m = MatchEngine::new();
        m.post(RequestId(1), spec(Source::Any, TagSel::Any));
        m.post(RequestId(2), spec(Source::Rank(RankId(3)), TagSel::Any));
        // Both accept; post order wins.
        let got = m.match_arrival(&env(3, 0, 1), &all);
        assert_eq!(got, Some(RequestId(1)));
        // Next arrival matches the remaining request.
        let got = m.match_arrival(&env(3, 0, 2), &all);
        assert_eq!(got, Some(RequestId(2)));
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn post_matches_first_unexpected_in_arrival_order() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        m.push_unexpected(arrived(env(2, 7, 1)));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.src, RankId(1));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.src, RankId(2));
        assert!(m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).is_none());
    }

    #[test]
    fn tag_and_source_filters_respected() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        assert!(m.match_post(&spec(Source::Any, TagSel::Tag(8)), &all).is_none());
        assert!(m.match_post(&spec(Source::Rank(RankId(2)), TagSel::Tag(7)), &all).is_none());
        assert!(m.match_post(&spec(Source::Rank(RankId(1)), TagSel::Tag(7)), &all).is_some());
    }

    #[test]
    fn admissibility_predicate_can_veto() {
        // SPBC's ident filter: refuse matches whose envelope iteration differs.
        let mut m = MatchEngine::new();
        let mut e = env(1, 7, 1);
        e.ident = MatchIdent::new(1, 2);
        m.push_unexpected(arrived(e));
        let s = RecvSpec { ident: MatchIdent::new(1, 1), ..spec(Source::Any, TagSel::Any) };
        let ident_eq = |spec: &RecvSpec, env: &Envelope| -> bool { spec.ident == env.ident };
        assert!(m.match_post(&s, &ident_eq).is_none(), "iteration mismatch vetoed");
        let s2 = RecvSpec { ident: MatchIdent::new(1, 2), ..s };
        assert!(m.match_post(&s2, &ident_eq).is_some());
    }

    #[test]
    fn probe_does_not_remove() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        assert!(m.probe(&spec(Source::Any, TagSel::Any), &all).is_some());
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn per_channel_fifo_order_preserved() {
        // Two same-channel messages can both match an ANY_SOURCE request;
        // the first sent (first arrived) must match first.
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        m.push_unexpected(arrived(env(1, 7, 2)));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.seqnum, 1);
    }

    #[test]
    fn other_comm_not_matched() {
        let mut m = MatchEngine::new();
        let mut e = env(1, 7, 1);
        e.comm = CommId(9);
        m.push_unexpected(arrived(e));
        assert!(m.match_post(&spec(Source::Any, TagSel::Any), &all).is_none());
    }

    #[test]
    fn restore_roundtrip() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 1, 1)));
        m.push_unexpected(arrived(env(2, 2, 1)));
        let snapshot: Vec<Arrived> = m.unexpected_iter().cloned().collect();
        let mut m2 = MatchEngine::new();
        m2.restore_unexpected(snapshot);
        assert_eq!(m2.unexpected_len(), 2);
        let got = m2.match_post(&spec(Source::Any, TagSel::Any), &all).unwrap();
        assert_eq!(got.env.src, RankId(1));
    }

    #[test]
    fn cross_bucket_arrival_order_wins_for_wildcard_post() {
        // Arrivals on three different channels; a wildcard post must take
        // them in global arrival order, not bucket order.
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(2, 5, 1)));
        m.push_unexpected(arrived(env(0, 9, 1)));
        m.push_unexpected(arrived(env(1, 7, 1)));
        for expect in [2u32, 0, 1] {
            let got = m.match_post(&spec(Source::Any, TagSel::Any), &all).unwrap();
            assert_eq!(got.env.src, RankId(expect));
        }
    }

    #[test]
    fn exact_bucket_vs_wildcard_list_post_order() {
        // A wildcard request posted between two exact requests on the same
        // channel: arrivals must honor global post order across the exact
        // bucket and the wildcard side-list.
        let mut m = MatchEngine::new();
        m.post(RequestId(1), spec(Source::Rank(RankId(4)), TagSel::Tag(3)));
        m.post(RequestId(2), spec(Source::Any, TagSel::Any));
        m.post(RequestId(3), spec(Source::Rank(RankId(4)), TagSel::Tag(3)));
        assert_eq!(m.match_arrival(&env(4, 3, 1), &all), Some(RequestId(1)));
        assert_eq!(m.match_arrival(&env(4, 3, 2), &all), Some(RequestId(2)));
        assert_eq!(m.match_arrival(&env(4, 3, 3), &all), Some(RequestId(3)));
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn post_front_outranks_existing_posts() {
        let mut m = MatchEngine::new();
        m.post(RequestId(1), spec(Source::Rank(RankId(2)), TagSel::Tag(1)));
        m.post(RequestId(2), spec(Source::Any, TagSel::Any));
        // Re-armed request regains top priority in its bucket *and* against
        // the wildcard list.
        m.post_front(RequestId(3), spec(Source::Rank(RankId(2)), TagSel::Tag(1)));
        assert_eq!(m.match_arrival(&env(2, 1, 1), &all), Some(RequestId(3)));
        assert_eq!(m.match_arrival(&env(2, 1, 2), &all), Some(RequestId(1)));
        assert_eq!(m.match_arrival(&env(2, 1, 3), &all), Some(RequestId(2)));
    }

    #[test]
    fn purge_rts_returns_arrival_order_across_buckets() {
        let mut m = MatchEngine::new();
        let rts = |src: u32, tag: u32, seq: u64, token: u64| Arrived {
            env: env(src, tag, seq),
            body: ArrivedBody::Rts { token },
        };
        m.push_unexpected(rts(1, 9, 1, 10));
        m.push_unexpected(arrived(env(1, 9, 2)));
        m.push_unexpected(rts(1, 5, 1, 11));
        m.push_unexpected(rts(2, 5, 1, 12));
        let purged = m.purge_rts_from(RankId(1));
        let tags: Vec<u32> = purged.iter().map(|e| e.tag).collect();
        assert_eq!(tags, vec![9, 5], "arrival order, only src 1, only RTS");
        assert_eq!(m.unexpected_len(), 2);
    }

    #[test]
    fn deep_exact_queues_stay_independent() {
        // Filling one channel's bucket must not affect matches on another.
        let mut m = MatchEngine::new();
        for s in 1..=100u64 {
            m.push_unexpected(arrived(env(1, 1, s)));
        }
        m.push_unexpected(arrived(env(2, 2, 1)));
        let got = m.match_post(&spec(Source::Rank(RankId(2)), TagSel::Tag(2)), &all).unwrap();
        assert_eq!(got.env.src, RankId(2));
        assert_eq!(m.unexpected_len(), 100);
    }

    #[test]
    fn clear_resets_counters() {
        let mut m = MatchEngine::new();
        m.post(RequestId(1), spec(Source::Any, TagSel::Any));
        m.push_unexpected(arrived(env(1, 1, 1)));
        m.clear();
        assert_eq!(m.posted_len(), 0);
        assert_eq!(m.unexpected_len(), 0);
        assert!(m.match_arrival(&env(1, 1, 1), &all).is_none());
    }
}
