//! The message-matching engine: posted-receive queue and unexpected-message
//! queue, with MPI ordering semantics.
//!
//! * An arriving envelope matches the **first** posted request (in post
//!   order) that accepts it.
//! * A newly posted request matches the **first** unexpected envelope (in
//!   arrival order) that it accepts.
//!
//! Per-channel FIFO is provided by the transport (one mailbox per rank,
//! per-producer order preserved), so two messages on the same channel are
//! always considered in send order — the guarantee Section 3.2 relies on.
//!
//! Admissibility is the base `(comm, src, tag)` check **and** a pluggable
//! predicate supplied by the fault-tolerance layer (SPBC adds
//! `(pattern_id, iteration_id)` equality there).

use crate::envelope::Envelope;
use crate::request::{RecvSpec, RequestId};
use bytes::Bytes;
use std::collections::VecDeque;

/// Payload-or-placeholder of an arrived envelope.
#[derive(Clone, Debug)]
pub enum ArrivedBody {
    /// Full eager message: payload is here.
    Eager(Bytes),
    /// Rendezvous announcement: payload still at the sender; `token`
    /// identifies the sender-side pending transfer to CTS.
    Rts {
        /// Sender-side transfer token.
        token: u64,
    },
}

/// An arrived-but-unmatched message (the "unexpected queue" entry).
#[derive(Clone, Debug)]
pub struct Arrived {
    /// Envelope of the message.
    pub env: Envelope,
    /// Eager payload or rendezvous placeholder.
    pub body: ArrivedBody,
}

impl Arrived {
    /// True when the payload has not arrived yet (pending rendezvous).
    pub fn is_pending_rts(&self) -> bool {
        matches!(self.body, ArrivedBody::Rts { .. })
    }
}

/// The matching engine state for one rank.
#[derive(Default)]
pub struct MatchEngine {
    /// Posted receive requests in post order: `(request id, spec)`.
    posted: VecDeque<(RequestId, RecvSpec)>,
    /// Arrived, unmatched messages in arrival order.
    unexpected: VecDeque<Arrived>,
}

impl MatchEngine {
    /// Empty engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Try to match an arriving envelope against the posted queue.
    ///
    /// On a match the posted entry is removed and its request id returned; the
    /// caller completes / CTSes the request. On no match the caller must push
    /// the arrival via [`MatchEngine::push_unexpected`].
    pub fn match_arrival(
        &mut self,
        env: &Envelope,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<RequestId> {
        let pos = self
            .posted
            .iter()
            .position(|(_, spec)| spec.accepts(env) && admissible(spec, env))?;
        let (id, _) = self.posted.remove(pos).expect("position valid");
        Some(id)
    }

    /// Queue an arrival that matched nothing.
    pub fn push_unexpected(&mut self, arrived: Arrived) {
        self.unexpected.push_back(arrived);
    }

    /// Try to match a newly posted request against the unexpected queue.
    ///
    /// On a match the unexpected entry is removed and returned; the caller
    /// completes / CTSes. On no match the caller must post the request via
    /// [`MatchEngine::post`].
    pub fn match_post(
        &mut self,
        spec: &RecvSpec,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<Arrived> {
        let pos = self
            .unexpected
            .iter()
            .position(|a| spec.accepts(&a.env) && admissible(spec, &a.env))?;
        self.unexpected.remove(pos)
    }

    /// Append a request to the posted queue.
    pub fn post(&mut self, id: RequestId, spec: RecvSpec) {
        self.posted.push_back((id, spec));
    }

    /// Re-post a request at the *front* of the posted queue — used when a
    /// matched rendezvous receive must be re-armed because the sender died
    /// before shipping the payload; front placement preserves its original
    /// matching priority.
    pub fn post_front(&mut self, id: RequestId, spec: RecvSpec) {
        self.posted.push_front((id, spec));
    }

    /// Remove and return all pending-rendezvous (RTS) unexpected entries from
    /// `src` — their tokens dangle once the sender has been restarted.
    pub fn purge_rts_from(&mut self, src: crate::types::RankId) -> Vec<Envelope> {
        let mut purged = Vec::new();
        self.unexpected.retain(|a| {
            if a.is_pending_rts() && a.env.src == src {
                purged.push(a.env);
                false
            } else {
                true
            }
        });
        purged
    }

    /// Probe: first unexpected envelope matching `spec`, without removing it.
    pub fn probe(
        &self,
        spec: &RecvSpec,
        admissible: &dyn Fn(&RecvSpec, &Envelope) -> bool,
    ) -> Option<&Envelope> {
        self.unexpected
            .iter()
            .find(|a| spec.accepts(&a.env) && admissible(spec, &a.env))
            .map(|a| &a.env)
    }

    /// Number of posted, unmatched receive requests.
    pub fn posted_len(&self) -> usize {
        self.posted.len()
    }

    /// Number of unexpected messages queued.
    pub fn unexpected_len(&self) -> usize {
        self.unexpected.len()
    }

    /// Iterate the posted queue (diagnostics).
    pub fn posted_iter(&self) -> impl Iterator<Item = &(RequestId, RecvSpec)> {
        self.posted.iter()
    }

    /// Iterate the unexpected queue (checkpoint serialization).
    pub fn unexpected_iter(&self) -> impl Iterator<Item = &Arrived> {
        self.unexpected.iter()
    }

    /// Replace the unexpected queue wholesale (checkpoint restore).
    pub fn restore_unexpected(&mut self, entries: Vec<Arrived>) {
        self.unexpected = entries.into();
    }

    /// Drop all posted requests and unexpected messages (rank teardown).
    pub fn clear(&mut self) {
        self.posted.clear();
        self.unexpected.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{CommId, MatchIdent, RankId, Source, TagSel, COMM_WORLD};

    fn env(src: u32, tag: u32, seq: u64) -> Envelope {
        Envelope {
            src: RankId(src),
            dst: RankId(0),
            comm: COMM_WORLD,
            tag,
            seqnum: seq,
            plen: 0,
            lamport: 0,
            ident: MatchIdent::DEFAULT,
        }
    }

    fn spec(src: Source, tag: TagSel) -> RecvSpec {
        RecvSpec { comm: COMM_WORLD, src, tag, ident: MatchIdent::DEFAULT }
    }

    fn all(_: &RecvSpec, _: &Envelope) -> bool {
        true
    }

    fn arrived(env: Envelope) -> Arrived {
        Arrived { env, body: ArrivedBody::Eager(Bytes::new()) }
    }

    #[test]
    fn arrival_matches_first_posted_in_post_order() {
        let mut m = MatchEngine::new();
        m.post(RequestId(1), spec(Source::Any, TagSel::Any));
        m.post(RequestId(2), spec(Source::Rank(RankId(3)), TagSel::Any));
        // Both accept; post order wins.
        let got = m.match_arrival(&env(3, 0, 1), &all);
        assert_eq!(got, Some(RequestId(1)));
        // Next arrival matches the remaining request.
        let got = m.match_arrival(&env(3, 0, 2), &all);
        assert_eq!(got, Some(RequestId(2)));
        assert_eq!(m.posted_len(), 0);
    }

    #[test]
    fn post_matches_first_unexpected_in_arrival_order() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        m.push_unexpected(arrived(env(2, 7, 1)));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.src, RankId(1));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.src, RankId(2));
        assert!(m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).is_none());
    }

    #[test]
    fn tag_and_source_filters_respected() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        assert!(m.match_post(&spec(Source::Any, TagSel::Tag(8)), &all).is_none());
        assert!(m.match_post(&spec(Source::Rank(RankId(2)), TagSel::Tag(7)), &all).is_none());
        assert!(m.match_post(&spec(Source::Rank(RankId(1)), TagSel::Tag(7)), &all).is_some());
    }

    #[test]
    fn admissibility_predicate_can_veto() {
        // SPBC's ident filter: refuse matches whose envelope iteration differs.
        let mut m = MatchEngine::new();
        let mut e = env(1, 7, 1);
        e.ident = MatchIdent::new(1, 2);
        m.push_unexpected(arrived(e));
        let s = RecvSpec { ident: MatchIdent::new(1, 1), ..spec(Source::Any, TagSel::Any) };
        let ident_eq =
            |spec: &RecvSpec, env: &Envelope| -> bool { spec.ident == env.ident };
        assert!(m.match_post(&s, &ident_eq).is_none(), "iteration mismatch vetoed");
        let s2 = RecvSpec { ident: MatchIdent::new(1, 2), ..s };
        assert!(m.match_post(&s2, &ident_eq).is_some());
    }

    #[test]
    fn probe_does_not_remove() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        assert!(m.probe(&spec(Source::Any, TagSel::Any), &all).is_some());
        assert_eq!(m.unexpected_len(), 1);
    }

    #[test]
    fn per_channel_fifo_order_preserved() {
        // Two same-channel messages can both match an ANY_SOURCE request;
        // the first sent (first arrived) must match first.
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 7, 1)));
        m.push_unexpected(arrived(env(1, 7, 2)));
        let got = m.match_post(&spec(Source::Any, TagSel::Tag(7)), &all).unwrap();
        assert_eq!(got.env.seqnum, 1);
    }

    #[test]
    fn other_comm_not_matched() {
        let mut m = MatchEngine::new();
        let mut e = env(1, 7, 1);
        e.comm = CommId(9);
        m.push_unexpected(arrived(e));
        assert!(m.match_post(&spec(Source::Any, TagSel::Any), &all).is_none());
    }

    #[test]
    fn restore_roundtrip() {
        let mut m = MatchEngine::new();
        m.push_unexpected(arrived(env(1, 1, 1)));
        m.push_unexpected(arrived(env(2, 2, 1)));
        let snapshot: Vec<Arrived> = m.unexpected_iter().cloned().collect();
        let mut m2 = MatchEngine::new();
        m2.restore_unexpected(snapshot);
        assert_eq!(m2.unexpected_len(), 2);
        let got = m2.match_post(&spec(Source::Any, TagSel::Any), &all).unwrap();
        assert_eq!(got.env.src, RankId(1));
    }
}
