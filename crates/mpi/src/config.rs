//! Runtime configuration.

use std::str::FromStr;
use std::time::Duration;

/// Which fabric carries packets between ranks.
///
/// The default is read once per config from `$SPBC_TRANSPORT` (registered in
/// `spbc_core::env::VARS`), so an entire test suite can be swung onto the
/// wire path without touching code; [`Topology::with_transport`] overrides it
/// programmatically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Crossbeam channels, every rank a thread in this process (default).
    InProc,
    /// Length-prefixed frames over Unix-domain sockets (loopback hub).
    Uds,
}

impl TransportKind {
    /// The environment's choice: `$SPBC_TRANSPORT`, defaulting to in-process.
    pub fn from_env() -> Self {
        std::env::var("SPBC_TRANSPORT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(TransportKind::InProc)
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim() {
            "" | "inproc" => Ok(TransportKind::InProc),
            "uds" => Ok(TransportKind::Uds),
            other => Err(format!("unknown transport {other:?} (expected inproc or uds)")),
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransportKind::InProc => "inproc",
            TransportKind::Uds => "uds",
        })
    }
}

/// The shape of a run in one value: how many ranks, how they cluster into
/// failure-containment units, and which fabric connects them. This is the
/// single doorway for topology choices — harness code builds one `Topology`
/// (env vars act as overrides only, via `spbc_core::env::topology`) and hands
/// it to [`crate::runtime::RunBuilder::topology`] plus its cluster map.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Application ranks.
    pub ranks: usize,
    /// Failure-containment clusters (`ranks` should divide evenly).
    pub clusters: usize,
    /// The fabric between ranks.
    pub transport: TransportKind,
}

impl Topology {
    /// A topology of `ranks` ranks in `clusters` clusters, transport from
    /// the environment (`$SPBC_TRANSPORT`, default in-process).
    pub fn new(ranks: usize, clusters: usize) -> Self {
        Topology { ranks, clusters, transport: TransportKind::from_env() }
    }

    /// Builder-style: pin the transport, ignoring the environment.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Ranks per cluster (rounding up on uneven splits).
    pub fn ranks_per_cluster(&self) -> usize {
        self.ranks.div_ceil(self.clusters.max(1))
    }
}

/// Scheduling-perturbation settings used by the determinism checkers: the
/// sender sleeps a pseudo-random amount before some transmissions, shaking up
/// message interleavings without changing what is sent.
#[derive(Clone, Debug)]
pub struct Perturb {
    /// Upper bound of the injected delay, in microseconds.
    pub max_delay_us: u64,
    /// Probability (0..=1) that a given transmission is delayed.
    pub probability: f64,
    /// Base seed; combined with the rank id so ranks diverge.
    pub seed: u64,
}

impl Default for Perturb {
    fn default() -> Self {
        Perturb { max_delay_us: 150, probability: 0.25, seed: 0xC0FFEE }
    }
}

/// Configuration of a [`crate::runtime::Runtime`] execution.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of application ranks.
    pub world_size: usize,
    /// Additional service ranks (ids `world_size..world_size+service_ranks`),
    /// e.g. the HydEE recovery coordinator. They are not part of any
    /// communicator.
    pub service_ranks: usize,
    /// Ranks per simulated node. Failure containment below node granularity
    /// is pointless (Section 6.1), so clustering tools keep co-located ranks
    /// together.
    pub ranks_per_node: usize,
    /// Payloads strictly larger than this use the rendezvous protocol.
    pub eager_threshold: usize,
    /// How long a blocking operation may wait without progress before the
    /// runtime reports a suspected deadlock instead of hanging forever.
    pub deadlock_timeout: Duration,
    /// Poll interval of blocking waits (also the kill-flag latency).
    pub poll_interval: Duration,
    /// Optional scheduling perturbation.
    pub perturb: Option<Perturb>,
    /// Flight-recorder capacity in events per rank. `None` (the default)
    /// disables event recording entirely; `Some(cap)` gives every rank a ring
    /// of the newest `cap` protocol events for watchdog dumps and
    /// Chrome-trace export. Requires the `flight-recorder` cargo feature
    /// (default-on) to have any effect.
    pub flight_recorder: Option<usize>,
    /// When true (the default), `RankStats::on_send` digests every payload
    /// into the determinism chains. Workloads that never run a determinism
    /// check can turn this off to take payload hashing out of the send path.
    pub payload_digests: bool,
    /// The fabric carrying packets between ranks. Defaults from
    /// `$SPBC_TRANSPORT` so existing suites can run over the wire path
    /// unchanged; see [`TransportKind`].
    pub transport: TransportKind,
}

impl RuntimeConfig {
    /// A configuration with sane defaults for `world_size` ranks.
    pub fn new(world_size: usize) -> Self {
        RuntimeConfig {
            world_size,
            service_ranks: 0,
            ranks_per_node: 8,
            eager_threshold: 16 * 1024,
            deadlock_timeout: Duration::from_secs(30),
            poll_interval: Duration::from_micros(200),
            perturb: None,
            flight_recorder: None,
            payload_digests: true,
            transport: TransportKind::from_env(),
        }
    }

    /// Builder-style: enable the flight recorder with `cap` events per rank.
    pub fn with_flight_recorder(mut self, cap: usize) -> Self {
        self.flight_recorder = Some(cap);
        self
    }

    /// Builder-style: enable or disable payload digesting in send statistics.
    pub fn with_payload_digests(mut self, on: bool) -> Self {
        self.payload_digests = on;
        self
    }

    /// Builder-style: set service rank count.
    pub fn with_services(mut self, n: usize) -> Self {
        self.service_ranks = n;
        self
    }

    /// Builder-style: set ranks per node.
    pub fn with_ranks_per_node(mut self, n: usize) -> Self {
        assert!(n > 0, "ranks_per_node must be positive");
        self.ranks_per_node = n;
        self
    }

    /// Builder-style: set the eager/rendezvous threshold.
    pub fn with_eager_threshold(mut self, bytes: usize) -> Self {
        self.eager_threshold = bytes;
        self
    }

    /// Builder-style: enable scheduling perturbation.
    pub fn with_perturb(mut self, p: Perturb) -> Self {
        self.perturb = Some(p);
        self
    }

    /// Builder-style: set the deadlock timeout.
    pub fn with_deadlock_timeout(mut self, d: Duration) -> Self {
        self.deadlock_timeout = d;
        self
    }

    /// Builder-style: pin the transport kind.
    pub fn with_transport(mut self, t: TransportKind) -> Self {
        self.transport = t;
        self
    }

    /// Total number of mailboxes (world + services).
    pub fn total_ranks(&self) -> usize {
        self.world_size + self.service_ranks
    }

    /// The node index hosting `rank` under the `ranks_per_node` layout.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.ranks_per_node
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.world_size.div_ceil(self.ranks_per_node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = RuntimeConfig::new(16)
            .with_services(1)
            .with_ranks_per_node(4)
            .with_eager_threshold(1024);
        assert_eq!(c.total_ranks(), 17);
        assert_eq!(c.node_of(5), 1);
        assert_eq!(c.node_count(), 4);
        assert_eq!(c.eager_threshold, 1024);
    }

    #[test]
    fn node_count_rounds_up() {
        let c = RuntimeConfig::new(10).with_ranks_per_node(4);
        assert_eq!(c.node_count(), 3);
    }
}
