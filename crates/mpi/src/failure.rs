//! Failure injection: chaos triggers, kill flags, and runtime events.
//!
//! The chaos engine generalizes the original "rank r dies at its nth failure
//! point" model into [`FailureTrigger`]s that can land a kill inside the
//! protocol's most fragile windows: a checkpoint wave opening, the local
//! write, the replication push, the commit barrier, mid-replay, or right
//! after (even *during*) another cluster's recovery. Rank threads and
//! protocol layers ask the shared controller at every [`FailureSite`] they
//! pass whether they must die there.

use crate::types::RankId;
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Protocol-layer checkpoint phases chaos triggers can key on. The names are
/// generic on purpose — any coordinated-checkpointing layer maps its own
/// state machine onto them (SPBC does in `spbc-core`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CkptHook {
    /// A checkpoint wave is opening on this rank (declared due, before any
    /// coordination message is sent).
    WaveOpen,
    /// The local checkpoint is about to be written (quiescence reached,
    /// commit order received).
    Write,
    /// The sealed checkpoint is about to be pushed to replica partners.
    Replicate,
    /// Inside the commit barrier: checkpoint written (and replicated), about
    /// to ACK and block for the leader's resume broadcast.
    CommitBarrier,
}

/// When a planned crash fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FailureTrigger {
    /// The `nth` time (1-based) the victim passes a
    /// [`crate::rank::Rank::failure_point`] *in its current incarnation*
    /// (the count restarts with the rank) — the original failure model.
    NthFailurePoint {
        /// Which occurrence triggers the crash (1-based).
        nth: u64,
    },
    /// The `nth` time (1-based, counted over the whole run, across
    /// incarnations) the victim passes checkpoint phase `phase`.
    CkptPhase {
        /// The targeted protocol phase.
        phase: CkptHook,
        /// Which passage of that phase triggers the crash (1-based).
        nth: u64,
    },
    /// The victim dies while *serving a replay*: fires once its replay
    /// engine has released at least `frac` (0.0..=1.0) of the messages
    /// queued for the current recovery round.
    ReplayProgress {
        /// Progress fraction at or beyond which the crash fires.
        frac: f64,
    },
    /// The victim dies at the first failure site it passes after cluster
    /// `of_cluster` has been respawned for the `nth` time — i.e. while that
    /// cluster's `nth` recovery is still in progress. With the victim inside
    /// `of_cluster` itself this is a repeated kill of a still-recovering
    /// cluster.
    AfterRecovery {
        /// The cluster whose recovery arms this trigger.
        of_cluster: usize,
        /// Which recovery of that cluster (1-based).
        nth: u64,
    },
}

/// One planned crash: `rank` dies when `trigger` fires. Plans fire at most
/// once.
#[derive(Clone, Debug, PartialEq)]
pub struct FailurePlan {
    /// Victim rank.
    pub rank: RankId,
    /// When the victim dies.
    pub trigger: FailureTrigger,
}

impl FailurePlan {
    /// The classic plan: `rank` dies the `nth` time it passes a failure
    /// point (1-based).
    pub fn nth(rank: RankId, nth: u64) -> Self {
        FailurePlan { rank, trigger: FailureTrigger::NthFailurePoint { nth } }
    }

    /// `rank` dies the `nth` time it passes checkpoint phase `phase`.
    pub fn at_phase(rank: RankId, phase: CkptHook, nth: u64) -> Self {
        FailurePlan { rank, trigger: FailureTrigger::CkptPhase { phase, nth } }
    }

    /// `rank` dies once it has released `frac` of a replay round it serves.
    pub fn at_replay_progress(rank: RankId, frac: f64) -> Self {
        FailurePlan { rank, trigger: FailureTrigger::ReplayProgress { frac } }
    }

    /// `rank` dies at its first failure site after cluster `of_cluster`'s
    /// `nth` respawn.
    pub fn after_recovery(rank: RankId, of_cluster: usize, nth: u64) -> Self {
        FailurePlan { rank, trigger: FailureTrigger::AfterRecovery { of_cluster, nth } }
    }
}

/// A crash-evaluation site a rank passes: the argument of
/// [`FailureShared::should_fail_at`].
#[derive(Clone, Copy, Debug)]
pub enum FailureSite {
    /// An application-level failure point (`occurrence` is 1-based and
    /// per-incarnation).
    FailurePoint {
        /// This incarnation's failure-point count.
        occurrence: u64,
    },
    /// A protocol checkpoint phase; passages are counted by the controller.
    CkptPhase {
        /// Which phase is being passed.
        hook: CkptHook,
    },
    /// Replay progress: the rank has released `frac` of its current replay
    /// round.
    ReplayProgress {
        /// Released fraction (0.0..=1.0).
        frac: f64,
    },
}

/// Events the rank threads report to the runtime's main loop.
#[derive(Debug)]
pub enum RuntimeEvent {
    /// `rank` hit a failure plan and is about to die; the runtime must roll
    /// back its whole cluster.
    Failure {
        /// The crashing rank.
        rank: RankId,
    },
    /// `rank`'s application closure finished with `output`.
    Done {
        /// The finishing rank.
        rank: RankId,
        /// Application output bytes.
        output: Vec<u8>,
    },
    /// `rank` exited abnormally with an error message (not an injected kill).
    Error {
        /// The erroring rank.
        rank: RankId,
        /// Description.
        message: String,
    },
    /// `rank` observed its kill flag and unwound.
    Killed {
        /// The killed rank.
        rank: RankId,
    },
}

/// State shared between the failure controller, the runtime and the ranks.
pub struct FailureShared {
    plans: Mutex<Vec<FailurePlan>>,
    /// Cumulative per-(rank, hook) checkpoint-phase passage counts.
    ckpt_counts: Mutex<HashMap<(RankId, CkptHook), u64>>,
    /// Respawn count per cluster (the runtime reports each recovery).
    recoveries: Mutex<HashMap<usize, u64>>,
    /// Victims of fired [`FailureTrigger::AfterRecovery`] plans: they die at
    /// the next failure site they pass.
    armed: Mutex<HashSet<RankId>>,
    events: Sender<RuntimeEvent>,
    kill_flags: Vec<Arc<AtomicBool>>,
    stats: Vec<Mutex<Option<Box<crate::stats::RankStats>>>>,
}

impl FailureShared {
    /// Build shared state for `total_ranks` ranks reporting on `events`.
    pub fn new(total_ranks: usize, events: Sender<RuntimeEvent>) -> Self {
        FailureShared {
            plans: Mutex::new(Vec::new()),
            ckpt_counts: Mutex::new(HashMap::new()),
            recoveries: Mutex::new(HashMap::new()),
            armed: Mutex::new(HashSet::new()),
            events,
            kill_flags: (0..total_ranks).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            stats: (0..total_ranks).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Deposit a rank's final statistics (at thread exit; the latest epoch
    /// wins).
    pub fn set_stats(&self, rank: RankId, stats: crate::stats::RankStats) {
        *self.stats[rank.idx()].lock() = Some(Box::new(stats));
    }

    /// The statistics deposit slots (read by the runtime at teardown).
    pub fn stats_slots(&self) -> &[Mutex<Option<Box<crate::stats::RankStats>>>] {
        &self.stats
    }

    /// Register a crash plan.
    pub fn schedule(&self, plan: FailurePlan) {
        self.plans.lock().push(plan);
    }

    /// Called at each failure site a rank passes; returns `true` when the
    /// rank must crash now. Fired plans are removed so re-execution after
    /// recovery does not crash again on the same plan.
    pub fn should_fail_at(&self, rank: RankId, site: FailureSite) -> bool {
        // Armed AfterRecovery victims die at the very next site they pass.
        if self.armed.lock().remove(&rank) {
            return true;
        }
        let site_count = match site {
            FailureSite::FailurePoint { occurrence } => occurrence,
            FailureSite::CkptPhase { hook } => {
                let mut counts = self.ckpt_counts.lock();
                let c = counts.entry((rank, hook)).or_insert(0);
                *c += 1;
                *c
            }
            FailureSite::ReplayProgress { .. } => 0,
        };
        let mut plans = self.plans.lock();
        let pos = plans.iter().position(|p| {
            p.rank == rank
                && match (&p.trigger, site) {
                    (FailureTrigger::NthFailurePoint { nth }, FailureSite::FailurePoint { .. }) => {
                        *nth == site_count
                    }
                    (FailureTrigger::CkptPhase { phase, nth }, FailureSite::CkptPhase { hook }) => {
                        *phase == hook && *nth == site_count
                    }
                    (
                        FailureTrigger::ReplayProgress { frac },
                        FailureSite::ReplayProgress { frac: progress },
                    ) => progress >= *frac,
                    _ => false,
                }
        });
        match pos {
            Some(i) => {
                plans.remove(i);
                true
            }
            None => false,
        }
    }

    /// Compatibility wrapper: the classic per-incarnation failure-point
    /// check.
    pub fn should_fail(&self, rank: RankId, occurrence: u64) -> bool {
        self.should_fail_at(rank, FailureSite::FailurePoint { occurrence })
    }

    /// The runtime respawned cluster `cluster`: bump its recovery count and
    /// arm every [`FailureTrigger::AfterRecovery`] plan that names this
    /// recovery. Armed victims die at the next failure site they pass —
    /// while the recovery is still in progress.
    pub fn note_recovery(&self, cluster: usize) {
        let mut recoveries = self.recoveries.lock();
        let count = recoveries.entry(cluster).or_insert(0);
        *count += 1;
        let count = *count;
        drop(recoveries);
        let mut plans = self.plans.lock();
        let mut armed = self.armed.lock();
        plans.retain(|p| {
            if let FailureTrigger::AfterRecovery { of_cluster, nth } = p.trigger {
                if of_cluster == cluster && nth == count {
                    armed.insert(p.rank);
                    return false;
                }
            }
            true
        });
    }

    /// How often `cluster` has been respawned so far.
    pub fn recoveries_of(&self, cluster: usize) -> u64 {
        self.recoveries.lock().get(&cluster).copied().unwrap_or(0)
    }

    /// Report an event to the runtime (best-effort; the main loop may be
    /// gone during teardown).
    pub fn report(&self, ev: RuntimeEvent) {
        let _ = self.events.send(ev);
    }

    /// The kill flag of `rank`.
    pub fn kill_flag(&self, rank: RankId) -> Arc<AtomicBool> {
        Arc::clone(&self.kill_flags[rank.idx()])
    }

    /// Raise the kill flag of `rank`.
    pub fn kill(&self, rank: RankId) {
        self.kill_flags[rank.idx()].store(true, Ordering::SeqCst);
    }

    /// Clear the kill flag of `rank` (before respawning it).
    pub fn revive(&self, rank: RankId) {
        self.kill_flags[rank.idx()].store(false, Ordering::SeqCst);
    }

    /// Any crash plans still pending (armed victims count)?
    pub fn plans_pending(&self) -> bool {
        !self.plans.lock().is_empty() || !self.armed.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn plan_fires_once() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(4, tx);
        f.schedule(FailurePlan::nth(RankId(2), 3));
        assert!(!f.should_fail(RankId(2), 1));
        assert!(!f.should_fail(RankId(1), 3));
        assert!(f.should_fail(RankId(2), 3));
        // Re-execution passes the same point again: must not re-fire.
        assert!(!f.should_fail(RankId(2), 3));
        assert!(!f.plans_pending());
    }

    #[test]
    fn ckpt_phase_counts_passages() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(4, tx);
        f.schedule(FailurePlan::at_phase(RankId(1), CkptHook::CommitBarrier, 2));
        let site = FailureSite::CkptPhase { hook: CkptHook::CommitBarrier };
        assert!(!f.should_fail_at(RankId(1), site), "first passage survives");
        // A different hook or rank does not advance the count.
        assert!(!f.should_fail_at(RankId(1), FailureSite::CkptPhase { hook: CkptHook::Write }));
        assert!(!f.should_fail_at(RankId(0), site));
        assert!(f.should_fail_at(RankId(1), site), "second passage dies");
        assert!(!f.should_fail_at(RankId(1), site), "fired plans are removed");
    }

    #[test]
    fn replay_progress_threshold() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(2, tx);
        f.schedule(FailurePlan::at_replay_progress(RankId(0), 0.5));
        assert!(!f.should_fail_at(RankId(0), FailureSite::ReplayProgress { frac: 0.2 }));
        assert!(f.should_fail_at(RankId(0), FailureSite::ReplayProgress { frac: 0.5 }));
        assert!(!f.should_fail_at(RankId(0), FailureSite::ReplayProgress { frac: 0.9 }));
    }

    #[test]
    fn after_recovery_arms_victim() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(4, tx);
        f.schedule(FailurePlan::after_recovery(RankId(3), 0, 2));
        f.note_recovery(0);
        assert!(!f.should_fail(RankId(3), 1), "first recovery does not arm (nth=2)");
        f.note_recovery(0);
        assert_eq!(f.recoveries_of(0), 2);
        assert!(f.should_fail(RankId(3), 2), "armed victim dies at its next site");
        assert!(!f.should_fail(RankId(3), 3), "armed state consumed");
        assert!(!f.plans_pending());
    }

    #[test]
    fn kill_and_revive() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(2, tx);
        let flag = f.kill_flag(RankId(1));
        assert!(!flag.load(Ordering::SeqCst));
        f.kill(RankId(1));
        assert!(flag.load(Ordering::SeqCst));
        f.revive(RankId(1));
        assert!(!flag.load(Ordering::SeqCst));
    }

    #[test]
    fn events_flow() {
        let (tx, rx) = unbounded();
        let f = FailureShared::new(1, tx);
        f.report(RuntimeEvent::Failure { rank: RankId(0) });
        match rx.try_recv().unwrap() {
            RuntimeEvent::Failure { rank } => assert_eq!(rank, RankId(0)),
            _ => panic!(),
        }
    }
}
