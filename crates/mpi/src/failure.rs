//! Failure injection: plans, kill flags, and runtime events.

use crate::types::RankId;
use crossbeam_channel::Sender;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One planned crash: rank `rank` dies the `nth` time (1-based) it passes a
/// [`crate::rank::Rank::failure_point`]. Plans fire at most once.
#[derive(Clone, Debug)]
pub struct FailurePlan {
    /// Victim rank.
    pub rank: RankId,
    /// Which `failure_point` occurrence triggers the crash (1-based).
    pub nth: u64,
}

/// Events the rank threads report to the runtime's main loop.
#[derive(Debug)]
pub enum RuntimeEvent {
    /// `rank` hit a failure plan and is about to die; the runtime must roll
    /// back its whole cluster.
    Failure {
        /// The crashing rank.
        rank: RankId,
    },
    /// `rank`'s application closure finished with `output`.
    Done {
        /// The finishing rank.
        rank: RankId,
        /// Application output bytes.
        output: Vec<u8>,
    },
    /// `rank` exited abnormally with an error message (not an injected kill).
    Error {
        /// The erroring rank.
        rank: RankId,
        /// Description.
        message: String,
    },
    /// `rank` observed its kill flag and unwound.
    Killed {
        /// The killed rank.
        rank: RankId,
    },
}

/// State shared between the failure controller, the runtime and the ranks.
pub struct FailureShared {
    plans: Mutex<Vec<FailurePlan>>,
    events: Sender<RuntimeEvent>,
    kill_flags: Vec<Arc<AtomicBool>>,
    stats: Vec<Mutex<Option<Box<crate::stats::RankStats>>>>,
}

impl FailureShared {
    /// Build shared state for `total_ranks` ranks reporting on `events`.
    pub fn new(total_ranks: usize, events: Sender<RuntimeEvent>) -> Self {
        FailureShared {
            plans: Mutex::new(Vec::new()),
            events,
            kill_flags: (0..total_ranks).map(|_| Arc::new(AtomicBool::new(false))).collect(),
            stats: (0..total_ranks).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Deposit a rank's final statistics (at thread exit; the latest epoch
    /// wins).
    pub fn set_stats(&self, rank: RankId, stats: crate::stats::RankStats) {
        *self.stats[rank.idx()].lock() = Some(Box::new(stats));
    }

    /// The statistics deposit slots (read by the runtime at teardown).
    pub fn stats_slots(&self) -> &[Mutex<Option<Box<crate::stats::RankStats>>>] {
        &self.stats
    }

    /// Register a crash plan.
    pub fn schedule(&self, plan: FailurePlan) {
        self.plans.lock().push(plan);
    }

    /// Called by rank threads at each failure point; returns `true` when the
    /// rank must crash now. The fired plan is removed so re-execution after
    /// recovery does not crash again.
    pub fn should_fail(&self, rank: RankId, occurrence: u64) -> bool {
        let mut plans = self.plans.lock();
        if let Some(pos) = plans.iter().position(|p| p.rank == rank && p.nth == occurrence) {
            plans.remove(pos);
            true
        } else {
            false
        }
    }

    /// Report an event to the runtime (best-effort; the main loop may be
    /// gone during teardown).
    pub fn report(&self, ev: RuntimeEvent) {
        let _ = self.events.send(ev);
    }

    /// The kill flag of `rank`.
    pub fn kill_flag(&self, rank: RankId) -> Arc<AtomicBool> {
        Arc::clone(&self.kill_flags[rank.idx()])
    }

    /// Raise the kill flag of `rank`.
    pub fn kill(&self, rank: RankId) {
        self.kill_flags[rank.idx()].store(true, Ordering::SeqCst);
    }

    /// Clear the kill flag of `rank` (before respawning it).
    pub fn revive(&self, rank: RankId) {
        self.kill_flags[rank.idx()].store(false, Ordering::SeqCst);
    }

    /// Any crash plans still pending?
    pub fn plans_pending(&self) -> bool {
        !self.plans.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam_channel::unbounded;

    #[test]
    fn plan_fires_once() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(4, tx);
        f.schedule(FailurePlan { rank: RankId(2), nth: 3 });
        assert!(!f.should_fail(RankId(2), 1));
        assert!(!f.should_fail(RankId(1), 3));
        assert!(f.should_fail(RankId(2), 3));
        // Re-execution passes the same point again: must not re-fire.
        assert!(!f.should_fail(RankId(2), 3));
        assert!(!f.plans_pending());
    }

    #[test]
    fn kill_and_revive() {
        let (tx, _rx) = unbounded();
        let f = FailureShared::new(2, tx);
        let flag = f.kill_flag(RankId(1));
        assert!(!flag.load(Ordering::SeqCst));
        f.kill(RankId(1));
        assert!(flag.load(Ordering::SeqCst));
        f.revive(RankId(1));
        assert!(!flag.load(Ordering::SeqCst));
    }

    #[test]
    fn events_flow() {
        let (tx, rx) = unbounded();
        let f = FailureShared::new(1, tx);
        f.report(RuntimeEvent::Failure { rank: RankId(0) });
        match rx.try_recv().unwrap() {
            RuntimeEvent::Failure { rank } => assert_eq!(rank, RankId(0)),
            _ => panic!(),
        }
    }
}
