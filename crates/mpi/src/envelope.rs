//! Message envelopes and on-the-wire packets.

use crate::error::Result;
use crate::types::{ChannelId, CommId, MatchIdent, RankId, Tag};
use crate::wire::{Decode, Encode, Reader};
use bytes::Bytes;

/// Message metadata (the MPI "envelope"), extended with the per-channel
/// sequence number (Section 3.3) and the SPBC match identifier (Section 4.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct Envelope {
    /// Sending rank (world id).
    pub src: RankId,
    /// Destination rank (world id).
    pub dst: RankId,
    /// Communicator context.
    pub comm: CommId,
    /// User or collective tag.
    pub tag: Tag,
    /// Per-channel FIFO sequence number, starting at 1.
    pub seqnum: u64,
    /// Payload length in bytes (the envelope knows the count, as in MPI —
    /// needed by `probe` and by the rendezvous protocol, where the payload
    /// travels separately).
    pub plen: u64,
    /// Piggybacked Lamport timestamp of the send event. Maintained by the
    /// substrate; protocols that order replay causally (HydEE's centralized
    /// coordinator) consume it, SPBC ignores it.
    pub lamport: u64,
    /// `(pattern_id, iteration_id)` — equal on message and request or no match.
    pub ident: MatchIdent,
}

impl Envelope {
    /// The channel this message travels on.
    #[inline]
    pub fn channel(&self) -> ChannelId {
        ChannelId::new(self.src, self.dst, self.comm)
    }
}

impl Encode for Envelope {
    fn encode(&self, out: &mut Vec<u8>) {
        self.src.encode(out);
        self.dst.encode(out);
        self.comm.encode(out);
        self.tag.encode(out);
        self.seqnum.encode(out);
        self.plen.encode(out);
        self.lamport.encode(out);
        self.ident.encode(out);
    }
}

impl Decode for Envelope {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(Envelope {
            src: Decode::decode(r)?,
            dst: Decode::decode(r)?,
            comm: Decode::decode(r)?,
            tag: Tag::decode(r)?,
            seqnum: u64::decode(r)?,
            plen: u64::decode(r)?,
            lamport: u64::decode(r)?,
            ident: Decode::decode(r)?,
        })
    }
}

/// A complete application message: envelope plus payload.
///
/// `Bytes` keeps clones cheap — the sender-side log and in-flight copies share
/// one allocation.
#[derive(Clone, Debug, PartialEq)]
pub struct Message {
    /// Metadata.
    pub env: Envelope,
    /// Opaque payload.
    pub payload: Bytes,
}

impl Message {
    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

impl Encode for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        self.env.encode(out);
        (self.payload.len() as u64).encode(out);
        out.extend_from_slice(&self.payload);
    }
}

impl Decode for Message {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let env = Envelope::decode(r)?;
        let len = usize::decode(r)?;
        let b = r.take(len)?;
        Ok(Message { env, payload: Bytes::copy_from_slice(b) })
    }
}

/// Point-to-point transfer kinds.
///
/// Small messages travel *eagerly* (envelope + payload in one packet). Large
/// messages use a *rendezvous* protocol exactly like MPICH's: the sender ships
/// only the envelope (`Rts`); the receiver replies `Cts` once the envelope has
/// been **matched** to a receive request; the sender then ships the payload
/// (`Data`) straight to that request.
///
/// Matching therefore happens in envelope-arrival order (the MPI FIFO
/// guarantee), while *completion* order can differ — the distinction footnote
/// 1 of the paper relies on.
#[derive(Clone, Debug, PartialEq)]
pub enum Transfer {
    /// Envelope + payload.
    Eager(Message),
    /// Ready-to-send: envelope only; `token` identifies the sender-side
    /// pending transfer.
    Rts {
        /// Envelope of the announced message.
        env: Envelope,
        /// Sender-side pending-transfer token.
        token: u64,
    },
    /// Clear-to-send: receiver matched `token`'s envelope; `recv_req` is the
    /// receiver-side request slot the payload must be delivered to.
    Cts {
        /// Sender-side pending-transfer token being cleared.
        token: u64,
        /// Receiver-side request slot to deliver into.
        recv_req: u64,
        /// The receiver (where Data must go).
        dst: RankId,
    },
    /// Payload for a previously matched rendezvous transfer.
    Data {
        /// Envelope of the message.
        env: Envelope,
        /// Receiver-side request slot to complete.
        recv_req: u64,
        /// The payload.
        payload: Bytes,
    },
}

impl Encode for Transfer {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Transfer::Eager(msg) => {
                0u8.encode(out);
                msg.encode(out);
            }
            Transfer::Rts { env, token } => {
                1u8.encode(out);
                env.encode(out);
                token.encode(out);
            }
            Transfer::Cts { token, recv_req, dst } => {
                2u8.encode(out);
                token.encode(out);
                recv_req.encode(out);
                dst.encode(out);
            }
            Transfer::Data { env, recv_req, payload } => {
                3u8.encode(out);
                env.encode(out);
                recv_req.encode(out);
                payload.encode(out);
            }
        }
    }
}

impl Decode for Transfer {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::decode(r)? {
            0 => Transfer::Eager(Message::decode(r)?),
            1 => Transfer::Rts { env: Decode::decode(r)?, token: Decode::decode(r)? },
            2 => Transfer::Cts {
                token: Decode::decode(r)?,
                recv_req: Decode::decode(r)?,
                dst: Decode::decode(r)?,
            },
            3 => Transfer::Data {
                env: Decode::decode(r)?,
                recv_req: Decode::decode(r)?,
                payload: Decode::decode(r)?,
            },
            k => {
                return Err(crate::error::MpiError::Codec(format!("bad Transfer discriminant {k}")))
            }
        })
    }
}

/// Sentinel `recv_req` value in a [`Transfer::Cts`]: the receiver discarded
/// the announced message (duplicate suppressed by the protocol); the sender
/// must complete its transfer without shipping the payload.
pub const DISCARD_REQ: u64 = u64::MAX;

/// A fault-tolerance-layer control message. The runtime does not interpret
/// the body; each protocol defines its own `kind` space and wire format.
#[derive(Clone, Debug, PartialEq)]
pub struct CtrlMsg {
    /// Sending rank (world or service id).
    pub from: RankId,
    /// Protocol-defined discriminant.
    pub kind: u16,
    /// Protocol-defined body (usually `wire`-encoded).
    pub data: Bytes,
}

impl Encode for CtrlMsg {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.kind.encode(out);
        self.data.encode(out);
    }
}

impl Decode for CtrlMsg {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(CtrlMsg { from: Decode::decode(r)?, kind: Decode::decode(r)?, data: Decode::decode(r)? })
    }
}

/// Everything that can land in a rank's mailbox.
#[derive(Clone, Debug, PartialEq)]
pub enum Packet {
    /// Application data traffic.
    Msg(Transfer),
    /// Fault-tolerance control traffic.
    Ctrl(CtrlMsg),
}

impl Encode for Packet {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Packet::Msg(t) => {
                0u8.encode(out);
                t.encode(out);
            }
            Packet::Ctrl(c) => {
                1u8.encode(out);
                c.encode(out);
            }
        }
    }
}

impl Decode for Packet {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::decode(r)? {
            0 => Packet::Msg(Transfer::decode(r)?),
            1 => Packet::Ctrl(CtrlMsg::decode(r)?),
            k => return Err(crate::error::MpiError::Codec(format!("bad Packet discriminant {k}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::COMM_WORLD;
    use crate::wire::{from_bytes, to_bytes};

    fn env() -> Envelope {
        Envelope {
            src: RankId(1),
            dst: RankId(2),
            comm: COMM_WORLD,
            tag: 7,
            seqnum: 42,
            plen: 3,
            lamport: 9,
            ident: MatchIdent::new(1, 3),
        }
    }

    #[test]
    fn envelope_roundtrip() {
        let e = env();
        let back: Envelope = from_bytes(&to_bytes(&e)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn message_roundtrip() {
        let m = Message { env: env(), payload: Bytes::from(vec![1u8, 2, 3]) };
        let back: Message = from_bytes(&to_bytes(&m)).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
    }

    #[test]
    fn channel_of_envelope() {
        let e = env();
        assert_eq!(e.channel(), ChannelId::new(RankId(1), RankId(2), COMM_WORLD));
    }
}
