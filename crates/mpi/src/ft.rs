//! The fault-tolerance hook: how checkpointing protocols attach to the
//! message layer.
//!
//! The runtime is protocol-agnostic. A [`FtLayer`] implementation sees every
//! send, every arrival, every match decision and every control message, and
//! owns checkpoint/restore. SPBC (`spbc-core`) and all baselines
//! (`spbc-baselines`) are `FtLayer` implementations.
//!
//! Hooks are invoked from the rank's own thread, inside the progress engine;
//! they must never block. Operations that need to wait (coordinated
//! checkpointing) are expressed as state machines driven by
//! `checkpoint_begin` / `checkpoint_poll` with the runtime pumping progress
//! in between.

use crate::envelope::{CtrlMsg, Envelope, Message};
use crate::error::{MpiError, Result};
use crate::failure::{CkptHook, FailureSite, RuntimeEvent};
use crate::inner::RankInner;
use crate::matching::Arrived;
use crate::request::RecvSpec;
use crate::types::{ChannelId, CommId, MatchIdent, RankId};
use bytes::Bytes;
use std::collections::HashMap;

/// Verdict of [`FtLayer::on_send`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SendAction {
    /// Transmit the message normally.
    Forward,
    /// Do not transmit (the receiver already has it — recovery re-execution
    /// with `seqnum <= LS`, Algorithm 1 line 7). The send operation still
    /// completes successfully from the application's point of view.
    Suppress,
}

/// Verdict of [`FtLayer::on_arrival`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalAction {
    /// Process the arrival (matching, delivery).
    Deliver,
    /// Discard it (duplicate suppressed by the receiver-side seqnum check).
    Drop,
}

/// Outcome of a checkpoint request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CkptOutcome {
    /// The layer decided no checkpoint is due; execution continues.
    NotDue,
    /// Coordination started; the caller must pump progress and call
    /// `checkpoint_poll` until it reports completion.
    InProgress,
}

/// The protocol hook. All methods have no-op defaults so trivial layers
/// (native execution) stay trivial.
pub trait FtLayer: Send {
    /// Short protocol name for reports ("spbc", "hydee", ...).
    fn name(&self) -> &'static str;

    /// Called once before the application closure runs — on initial start and
    /// on every restart. Restart logic (checkpoint restore, Rollback
    /// handshake of Algorithm 1 lines 16-20) lives here.
    fn on_start(&mut self, _ctx: &mut FtCtx<'_>) -> Result<()> {
        Ok(())
    }

    /// Observes (and may suppress) every outgoing application message.
    /// Inter-cluster logging (Algorithm 1 lines 5-6) happens here.
    fn on_send(&mut self, _ctx: &mut FtCtx<'_>, _env: &Envelope, _payload: &Bytes) -> SendAction {
        SendAction::Forward
    }

    /// Observes every arriving envelope before matching; may drop duplicates.
    fn on_arrival(&mut self, _ctx: &mut FtCtx<'_>, _env: &Envelope) -> ArrivalAction {
        ArrivalAction::Deliver
    }

    /// Extra match admissibility on top of `(comm, src, tag)` — SPBC requires
    /// `spec.ident == env.ident` (Section 4.3).
    fn match_admissible(&self, _spec: &RecvSpec, _env: &Envelope) -> bool {
        true
    }

    /// Handle a protocol control message.
    fn on_ctrl(&mut self, _ctx: &mut FtCtx<'_>, _msg: CtrlMsg) -> Result<()> {
        Ok(())
    }

    /// Completion notification for a fire-and-forget transfer started with
    /// [`FtCtx::ft_send_message`] that went through rendezvous (`token` as
    /// returned there). Used by the replay flow-control window.
    fn on_transfer_complete(&mut self, _ctx: &mut FtCtx<'_>, _token: u64) -> Result<()> {
        Ok(())
    }

    /// The application reached a checkpoint opportunity with serialized state
    /// `app_state`. Return `NotDue` to skip, or `InProgress` to start
    /// coordination (the caller then drives `checkpoint_poll`).
    fn checkpoint_begin(
        &mut self,
        _ctx: &mut FtCtx<'_>,
        _app_state: Vec<u8>,
    ) -> Result<CkptOutcome> {
        Ok(CkptOutcome::NotDue)
    }

    /// Advance checkpoint coordination; `Ok(true)` when the checkpoint is
    /// committed and execution may continue.
    fn checkpoint_poll(&mut self, _ctx: &mut FtCtx<'_>) -> Result<bool> {
        Ok(true)
    }

    /// Application state restored from the checkpoint this rank restarted
    /// from, if any. Consumed by `Rank::restore`.
    fn restored_app_state(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Called when the application closure returned successfully, before the
    /// rank enters its linger loop (where it keeps serving `on_ctrl`).
    fn on_app_done(&mut self, _ctx: &mut FtCtx<'_>) -> Result<()> {
        Ok(())
    }
}

/// The trivial layer: native execution, no fault tolerance.
#[derive(Default)]
pub struct NoFt;

impl FtLayer for NoFt {
    fn name(&self) -> &'static str {
        "native"
    }
}

/// Constructs the per-rank layers and tells the runtime how ranks group into
/// clusters (the runtime needs that to kill a whole cluster on failure).
pub trait FtProvider: Send + Sync {
    /// Cluster index of a world rank.
    fn cluster_of(&self, rank: RankId) -> usize;
    /// Build the layer for `rank`; `epoch` is 0 initially and increments on
    /// every restart of that rank.
    fn make_layer(&self, rank: RankId, epoch: u32) -> Box<dyn FtLayer>;
    /// The runtime observed `rank` fail (its process died; siblings are
    /// killed for containment but did not lose state). Providers modeling
    /// node-loss storage semantics drop the rank's node-local data here;
    /// the default keeps everything (process-kill semantics).
    fn on_rank_failed(&self, _rank: RankId) {}
}

/// Native provider: every rank its own cluster, no-op layer.
pub struct NativeProvider;

impl FtProvider for NativeProvider {
    fn cluster_of(&self, rank: RankId) -> usize {
        rank.idx()
    }
    fn make_layer(&self, _rank: RankId, _epoch: u32) -> Box<dyn FtLayer> {
        Box::new(NoFt)
    }
}

/// Controlled view of the rank internals handed to `FtLayer` hooks.
pub struct FtCtx<'a> {
    pub(crate) inner: &'a mut RankInner,
}

impl<'a> FtCtx<'a> {
    /// This rank's world id.
    pub fn me(&self) -> RankId {
        self.inner.me
    }

    /// World size (application ranks).
    pub fn world_size(&self) -> usize {
        self.inner.world
    }

    /// Restart epoch (0 = initial execution).
    pub fn epoch(&self) -> u32 {
        self.inner.epoch
    }

    /// The rank's flight-recorder handle (disabled unless the runtime
    /// enabled recording). Protocol layers use it to record checkpoint
    /// phases, log and replay progress.
    pub fn recorder(&self) -> &crate::recorder::Recorder {
        &self.inner.recorder
    }

    /// The rank's Lamport clock.
    pub fn lamport(&self) -> u64 {
        self.inner.lamport
    }

    /// Overwrite the Lamport clock (checkpoint restore).
    pub fn set_lamport(&mut self, v: u64) {
        self.inner.lamport = v;
    }

    /// Runtime configuration.
    pub fn config(&self) -> &crate::config::RuntimeConfig {
        &self.inner.cfg
    }

    /// Send a control message to a rank (world or service id).
    pub fn send_ctrl(&mut self, to: RankId, kind: u16, data: Vec<u8>) {
        self.inner.send_ctrl(to, kind, data);
    }

    /// Chaos-engine hook: the protocol layer is passing checkpoint phase
    /// `hook`. When a [`crate::failure::FailureTrigger::CkptPhase`] plan
    /// targets this passage, the crash is reported, the rank's own kill flag
    /// raised, and `Err(Killed)` returned for prompt unwinding.
    pub fn chaos_ckpt_hook(&mut self, hook: CkptHook) -> Result<()> {
        if self.inner.failure.should_fail_at(self.inner.me, FailureSite::CkptPhase { hook }) {
            self.chaos_die();
            return Err(MpiError::Killed);
        }
        Ok(())
    }

    /// Chaos-engine hook: this rank's replay engine has released fraction
    /// `frac` (0.0..=1.0) of its current replay round. Returns `true` when a
    /// [`crate::failure::FailureTrigger::ReplayProgress`] plan fires — the
    /// caller should stop pumping; the raised kill flag unwinds the rank at
    /// its next progress check even from non-`Result` contexts.
    pub fn chaos_replay_hook(&mut self, frac: f64) -> bool {
        if self.inner.failure.should_fail_at(self.inner.me, FailureSite::ReplayProgress { frac }) {
            self.chaos_die();
            return true;
        }
        false
    }

    /// Report the injected crash and raise our own kill flag (the runtime
    /// will kill the rest of the cluster when it processes the event).
    fn chaos_die(&mut self) {
        self.inner.failure.report(RuntimeEvent::Failure { rank: self.inner.me });
        self.inner.kill.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    /// Transmit an application message on behalf of the protocol (log
    /// replay). Bypasses `on_send`. Returns `Some(token)` when the transfer
    /// went through rendezvous and will be signaled via
    /// [`FtLayer::on_transfer_complete`]; `None` when it completed eagerly.
    pub fn ft_send_message(&mut self, msg: Message) -> Option<u64> {
        self.inner.transmit_message(msg.env, msg.payload, None)
    }

    /// Like [`FtCtx::ft_send_message`] but always through the rendezvous
    /// protocol: the returned token completes only once the receiver has
    /// matched the message and the payload shipped — a delivery receipt.
    /// Used by coordinated (HydEE-style) replay, where the next grant must
    /// wait until the recovering process consumed the previous message.
    pub fn ft_send_message_confirmed(&mut self, msg: Message) -> u64 {
        self.inner
            .transmit_message_opts(msg.env, msg.payload, None, true)
            .expect("forced rendezvous always returns a token")
    }

    /// Last sequence number sent on each outgoing channel (`(dst, comm)`).
    pub fn send_seq(&self) -> &HashMap<(RankId, CommId), u64> {
        &self.inner.send_seq
    }

    /// Overwrite the outgoing sequence counters (checkpoint restore).
    pub fn set_send_seq(&mut self, map: HashMap<(RankId, CommId), u64>) {
        self.inner.send_seq = map;
    }

    /// Last envelope sequence number seen on each incoming channel
    /// (`(src, comm)`), i.e. the per-channel `LR` of Algorithm 1.
    pub fn recv_seen(&self) -> &HashMap<(RankId, CommId), u64> {
        &self.inner.recv_seen
    }

    /// Overwrite the incoming watermarks (checkpoint restore).
    pub fn set_recv_seen(&mut self, map: HashMap<(RankId, CommId), u64>) {
        self.inner.recv_seen = map;
    }

    /// Watermark for one incoming channel (0 if never received).
    pub fn last_seen_on(&self, src: RankId, comm: CommId) -> u64 {
        self.inner.recv_seen.get(&(src, comm)).copied().unwrap_or(0)
    }

    /// Last sequence number sent on one outgoing channel (0 if never sent).
    pub fn last_sent_on(&self, dst: RankId, comm: CommId) -> u64 {
        self.inner.send_seq.get(&(dst, comm)).copied().unwrap_or(0)
    }

    /// Snapshot of the unexpected queue (checkpoint).
    pub fn unexpected_snapshot(&self) -> Vec<Arrived> {
        self.inner.engine.unexpected_iter().cloned().collect()
    }

    /// Snapshot of the communicator table (checkpoint): id, members,
    /// my position, split counter, collective counter. Sub-communicators and
    /// collective tags must survive rollback or re-executed collectives
    /// could not match logged traffic.
    pub fn comms_snapshot(&self) -> Vec<(u64, Vec<RankId>, u64, u64, u64)> {
        let mut v: Vec<(u64, Vec<RankId>, u64, u64, u64)> = self
            .inner
            .comms
            .values()
            .map(|c| (c.id.0, c.members.clone(), c.my_pos as u64, c.split_seq, c.coll_seq))
            .collect();
        v.sort_by_key(|e| e.0);
        v
    }

    /// Restore the communicator table from a checkpoint snapshot.
    pub fn restore_comms(&mut self, snapshot: Vec<(u64, Vec<RankId>, u64, u64, u64)>) {
        self.inner.comms.clear();
        for (id, members, my_pos, split_seq, coll_seq) in snapshot {
            let id = CommId(id);
            self.inner.comms.insert(
                id,
                crate::inner::CommInfo {
                    id,
                    members,
                    my_pos: my_pos as usize,
                    split_seq,
                    coll_seq,
                },
            );
        }
    }

    /// Restore the unexpected queue (rollback).
    pub fn restore_unexpected(&mut self, entries: Vec<Arrived>) {
        self.inner.engine.restore_unexpected(entries);
    }

    /// Number of live (unconsumed) requests — checkpoints require zero.
    pub fn live_requests(&self) -> usize {
        self.inner.reqs.live()
    }

    /// Peer `peer` restarted: drop its dangling inbound rendezvous
    /// announcements and re-arm matched requests. Returns the envelopes whose
    /// payloads must be replayed by the restarted peer.
    pub fn purge_rdv_from_peer(&mut self, peer: RankId) -> Vec<Envelope> {
        self.inner.purge_rdv_from_peer(peer)
    }

    /// Peer `peer` restarted: cancel outbound rendezvous transfers to it.
    /// Returns the tokens of fire-and-forget (replay) transfers dropped.
    pub fn cancel_pending_rdv_to(&mut self, peer: RankId) -> Vec<u64> {
        self.inner.cancel_pending_rdv_to(peer)
    }

    /// The identifier currently active for sends/receives.
    pub fn current_ident(&self) -> MatchIdent {
        self.inner.cur_ident
    }

    /// All channels this rank has ever sent on or received from — the
    /// channel set used for the Rollback handshake.
    pub fn known_channels(&self) -> Vec<ChannelId> {
        let me = self.inner.me;
        let mut v: Vec<ChannelId> = self
            .inner
            .send_seq
            .keys()
            .map(|&(dst, comm)| ChannelId::new(me, dst, comm))
            .chain(self.inner.recv_seen.keys().map(|&(src, comm)| ChannelId::new(src, me, comm)))
            .collect();
        v.sort();
        v.dedup();
        v
    }
}
