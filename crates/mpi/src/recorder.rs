//! The protocol flight recorder: a fixed-capacity ring of typed, timestamped
//! events per rank.
//!
//! Aggregate counters (`stats`, `spbc-core`'s `Metrics`) say *how much* the
//! protocol did; they cannot say *in what order*. When a recovery goes wrong
//! the interleaving is the bug, so every rank records its protocol decisions
//! — sends (and suppressions), arrival dispositions, control messages, log
//! appends and truncations, checkpoint phases, rollback and replay progress —
//! into a ring buffer the runtime can dump when quiescence stalls
//! ([`FlightRecorder::dump`]) or export as a Chrome trace after the run
//! (`spbc-trace`).
//!
//! Cost model: recording is a single branch when disabled (the default); the
//! event value is built lazily, so a disabled recorder evaluates nothing.
//! When enabled, one `parking_lot` mutex lock plus a ring push per event —
//! the lock is uncontended (only the owning rank writes; readers appear only
//! at dump/export time). Building without the `flight-recorder` cargo
//! feature compiles `record` down to an empty inline function, so the no-op
//! path is also a compile-time configuration CI can pin.

use crate::types::RankId;
#[cfg(feature = "flight-recorder")]
use parking_lot::Mutex;
#[cfg(feature = "flight-recorder")]
use std::collections::VecDeque;
use std::fmt;
#[cfg(feature = "flight-recorder")]
use std::sync::Arc;
#[cfg(feature = "flight-recorder")]
use std::time::Instant;

/// Checkpoint lifecycle phase, in protocol order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CkptPhase {
    /// Member announced itself to the leader (`KIND_CKPT_JOIN` sent).
    Init,
    /// Local checkpoint persisted (commit received, state written).
    Written,
    /// Commit acknowledged to the leader (`KIND_CKPT_ACK` sent).
    Ack,
    /// Leader's resume barrier released this member (`KIND_CKPT_RESUME`).
    Resume,
}

/// Lifecycle of an asynchronous checkpoint write (spbc-ckptstore).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WritePhase {
    /// Blob handed to the background writer; the rank resumes immediately.
    Submitted,
    /// Background writer made the blob durable (recorded from the writer
    /// thread, possibly long after the rank moved on — that gap is the
    /// hidden latency).
    Completed,
}

/// What the matching layer did with an arriving envelope.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Matched a posted receive.
    Matched,
    /// Queued as unexpected.
    Unexpected,
    /// Dropped by the protocol (duplicate or out-of-order suppression).
    Dropped,
}

/// One recorded protocol event. Field widths mirror the envelope
/// (`comm` is the raw `CommId` value).
#[derive(Clone, Debug)]
pub enum Event {
    /// Rank (re)started with the given restart epoch.
    RankStart {
        /// Restart epoch (0 = initial execution).
        epoch: u32,
    },
    /// Application closure returned successfully.
    RankDone,
    /// Rank was killed (crash injection / cluster rollback).
    RankKilled,
    /// Rank reported an error to the runtime.
    RankError,
    /// Application send decision (records suppressed re-sends too — the send
    /// *event* exists regardless of transmission).
    Send {
        /// Destination world rank.
        dst: RankId,
        /// Communicator id.
        comm: u64,
        /// Message tag.
        tag: u32,
        /// Per-channel sequence number.
        seqnum: u64,
        /// Payload bytes.
        bytes: u64,
        /// True when the protocol suppressed the transmission (`seq <= LS`).
        suppressed: bool,
    },
    /// Envelope arrival and its matching disposition.
    Arrival {
        /// Source world rank.
        src: RankId,
        /// Communicator id.
        comm: u64,
        /// Message tag.
        tag: u32,
        /// Per-channel sequence number.
        seqnum: u64,
        /// What happened to it.
        disposition: Disposition,
    },
    /// Control message sent.
    CtrlSent {
        /// Receiver.
        to: RankId,
        /// Protocol kind code.
        kind: u16,
    },
    /// Control message received.
    CtrlRecv {
        /// Sender.
        from: RankId,
        /// Protocol kind code.
        kind: u16,
    },
    /// Inter-cluster message appended to the sender-side log.
    LogAppend {
        /// Destination world rank.
        dst: RankId,
        /// Communicator id.
        comm: u64,
        /// Per-channel sequence number.
        seqnum: u64,
        /// Payload bytes.
        bytes: u64,
    },
    /// Log rolled back to a checkpointed cut.
    LogTruncate {
        /// Entries surviving the truncation.
        entries: u64,
        /// Restored global send-order counter.
        order: u64,
    },
    /// Checkpoint wave phase transition.
    Ckpt {
        /// Checkpoint wave epoch.
        epoch: u64,
        /// Phase reached.
        phase: CkptPhase,
    },
    /// This rank restarted and announced Rollback to its peers.
    Rollback {
        /// Restart epoch of this incarnation.
        epoch: u32,
        /// Checkpoint wave restored (0 = initial state).
        restored_ckpt: u64,
    },
    /// A peer's Rollback announcement arrived.
    RollbackRecv {
        /// The restarted peer.
        from: RankId,
        /// The peer's restart epoch.
        epoch: u32,
    },
    /// LastMessage reply set the suppression watermark for a channel.
    LsSet {
        /// Peer the watermark applies to.
        peer: RankId,
        /// Communicator id.
        comm: u64,
        /// Last seqnum the peer confirmed having.
        ls: u64,
    },
    /// A replay queue towards `dst` was (re)filled from the log.
    ReplayQueued {
        /// Recovering destination.
        dst: RankId,
        /// Messages queued.
        msgs: u64,
    },
    /// One logged message re-sent during recovery.
    Replay {
        /// Recovering destination.
        dst: RankId,
        /// Communicator id.
        comm: u64,
        /// Per-channel sequence number (the replay watermark).
        seqnum: u64,
    },
    /// The replay queue towards `dst` drained.
    ReplayDrained {
        /// Recovering destination.
        dst: RankId,
    },
    /// A blocking wait exceeded the deadlock timeout.
    Stall {
        /// The operation that stalled ("wait", "checkpoint", ...).
        what: String,
    },
    /// Asynchronous local checkpoint write progress (spbc-ckptstore).
    CkptWrite {
        /// Checkpoint wave epoch.
        epoch: u64,
        /// Sealed blob size actually written (full or delta).
        bytes: u64,
        /// Serialized checkpoint body size (what a full write would cost;
        /// `bytes < logical` means the delta path deduplicated chunks).
        logical: u64,
        /// Submitted (rank side) or Completed (writer side).
        phase: WritePhase,
    },
    /// Checkpoint blob pushed to a partner rank for replicated storage.
    CkptReplPush {
        /// Partner holding the copy.
        partner: RankId,
        /// Checkpoint wave epoch.
        epoch: u64,
        /// Sealed blob size.
        bytes: u64,
    },
    /// A partner stored a pushed checkpoint copy (receiver side).
    CkptReplStore {
        /// Rank owning the checkpoint.
        owner: RankId,
        /// Checkpoint wave epoch.
        epoch: u64,
        /// Sealed blob size.
        bytes: u64,
    },
    /// A partner acknowledged a stored copy (owner side; closes the span
    /// opened by [`Event::CkptReplPush`]).
    CkptReplAck {
        /// The acknowledging partner.
        partner: RankId,
        /// Checkpoint wave epoch.
        epoch: u64,
    },
    /// A lost/corrupt local checkpoint was repaired from a partner copy.
    CkptRepair {
        /// Checkpoint wave epoch restored.
        epoch: u64,
        /// Partner rank whose copy survived.
        from: RankId,
    },
    /// A lost local checkpoint was reconstructed from redundancy-set
    /// parity (erasure decode over the set's survivors).
    CkptRebuild {
        /// Checkpoint wave epoch restored.
        epoch: u64,
        /// Redundancy set the parity belonged to.
        set_id: u32,
    },
    /// Automatic storage GC pruned old checkpoint copies.
    CkptGc {
        /// Copies removed.
        pruned: u64,
        /// Oldest epoch retained.
        keep_from: u64,
    },
    /// A timed checkpoint-lifecycle phase completed with the given measured
    /// latency (the same sample the protocol's per-phase histograms record).
    /// A stuck wave is diagnosed by the newest of these: it names the last
    /// phase that *finished*, so the hang is in whatever comes next.
    CkptPhaseDone {
        /// Checkpoint wave epoch (for restore phases: the restored wave).
        epoch: u64,
        /// Stable phase key ("quiesce", "encode", "write", ...).
        phase: &'static str,
        /// Measured phase latency in microseconds.
        us: u64,
    },
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::RankStart { epoch } => write!(f, "start e{epoch}"),
            Event::RankDone => write!(f, "done"),
            Event::RankKilled => write!(f, "killed"),
            Event::RankError => write!(f, "error"),
            Event::Send { dst, comm, tag, seqnum, bytes, suppressed } => write!(
                f,
                "send ->{dst} c{comm} t{tag} s{seqnum} {bytes}B{}",
                if *suppressed { " (suppressed)" } else { "" }
            ),
            Event::Arrival { src, comm, tag, seqnum, disposition } => {
                write!(f, "arrival <-{src} c{comm} t{tag} s{seqnum} {disposition:?}")
            }
            Event::CtrlSent { to, kind } => write!(f, "ctrl ->{to} k{kind}"),
            Event::CtrlRecv { from, kind } => write!(f, "ctrl <-{from} k{kind}"),
            Event::LogAppend { dst, comm, seqnum, bytes } => {
                write!(f, "log-append ->{dst} c{comm} s{seqnum} {bytes}B")
            }
            Event::LogTruncate { entries, order } => {
                write!(f, "log-truncate keep={entries} order={order}")
            }
            Event::Ckpt { epoch, phase } => write!(f, "ckpt e{epoch} {phase:?}"),
            Event::Rollback { epoch, restored_ckpt } => {
                write!(f, "rollback e{epoch} restored-ckpt={restored_ckpt}")
            }
            Event::RollbackRecv { from, epoch } => write!(f, "rollback-recv <-{from} e{epoch}"),
            Event::LsSet { peer, comm, ls } => write!(f, "ls {peer}/c{comm}={ls}"),
            Event::ReplayQueued { dst, msgs } => write!(f, "replay-queued ->{dst} {msgs} msgs"),
            Event::Replay { dst, comm, seqnum } => write!(f, "replay ->{dst} c{comm} s{seqnum}"),
            Event::ReplayDrained { dst } => write!(f, "replay-drained ->{dst}"),
            Event::Stall { what } => write!(f, "STALL in {what}"),
            Event::CkptWrite { epoch, bytes, logical, phase } => {
                write!(f, "ckpt-write e{epoch} {bytes}B/{logical}B {phase:?}")
            }
            Event::CkptReplPush { partner, epoch, bytes } => {
                write!(f, "repl-push ->{partner} e{epoch} {bytes}B")
            }
            Event::CkptReplStore { owner, epoch, bytes } => {
                write!(f, "repl-store for {owner} e{epoch} {bytes}B")
            }
            Event::CkptReplAck { partner, epoch } => {
                write!(f, "repl-ack <-{partner} e{epoch}")
            }
            Event::CkptRepair { epoch, from } => {
                write!(f, "ckpt-repair e{epoch} from {from}")
            }
            Event::CkptRebuild { epoch, set_id } => {
                write!(f, "ckpt-rebuild e{epoch} set {set_id}")
            }
            Event::CkptGc { pruned, keep_from } => {
                write!(f, "ckpt-gc pruned={pruned} keep-from=e{keep_from}")
            }
            Event::CkptPhaseDone { epoch, phase, us } => {
                write!(f, "ckpt-phase e{epoch} {phase} {us}us")
            }
        }
    }
}

/// An event with its recording order and wall-clock offset.
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Microseconds since the run started (the [`FlightRecorder`]'s epoch).
    pub t_us: u64,
    /// Per-rank monotone sequence number (counts evicted events too).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

/// The drained events of one rank's ring.
#[derive(Clone, Debug, Default)]
pub struct RankTrace {
    /// World (or service) rank id.
    pub rank: u32,
    /// Events evicted by ring wraparound (total recorded = dropped + len).
    pub dropped: u64,
    /// Last stall-status line the rank published (`t_us`, text).
    pub status: Option<(u64, String)>,
    /// Retained events, oldest first.
    pub events: Vec<TimedEvent>,
}

/// A full run's recorded events, one trace per rank.
pub type FlightLog = Vec<RankTrace>;

#[cfg(feature = "flight-recorder")]
struct Ring {
    cap: usize,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<TimedEvent>,
}

#[cfg(feature = "flight-recorder")]
struct RecorderShared {
    start: Instant,
    ring: Mutex<Ring>,
    status: Mutex<Option<(u64, String)>>,
}

#[cfg(feature = "flight-recorder")]
impl RecorderShared {
    fn new(start: Instant, cap: usize) -> Self {
        RecorderShared {
            start,
            ring: Mutex::new(Ring {
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
                buf: VecDeque::with_capacity(cap.max(1)),
            }),
            status: Mutex::new(None),
        }
    }

    fn t_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    fn push(&self, event: Event) {
        let t_us = self.t_us();
        let mut ring = self.ring.lock();
        if ring.buf.len() == ring.cap {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.buf.push_back(TimedEvent { t_us, seq, event });
    }

    fn trace(&self, rank: u32) -> RankTrace {
        let ring = self.ring.lock();
        RankTrace {
            rank,
            dropped: ring.dropped,
            status: self.status.lock().clone(),
            events: ring.buf.iter().cloned().collect(),
        }
    }
}

/// Per-rank recording handle. Cheap to clone and to query; all methods are
/// no-ops on a disabled handle (the default configuration).
#[derive(Clone)]
pub struct Recorder {
    #[cfg(feature = "flight-recorder")]
    shared: Option<Arc<RecorderShared>>,
}

impl Recorder {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Recorder {
            #[cfg(feature = "flight-recorder")]
            shared: None,
        }
    }

    /// Is this handle actually recording?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "flight-recorder")]
        {
            self.shared.is_some()
        }
        #[cfg(not(feature = "flight-recorder"))]
        {
            false
        }
    }

    /// Record one event. The closure runs only when recording is enabled, so
    /// a disabled recorder costs a single branch and builds nothing.
    #[inline]
    pub fn record(&self, f: impl FnOnce() -> Event) {
        #[cfg(feature = "flight-recorder")]
        if let Some(s) = &self.shared {
            s.push(f());
        }
        #[cfg(not(feature = "flight-recorder"))]
        let _ = f;
    }

    /// Publish a status line (current watermarks / queue state) for the
    /// watchdog dump. Called from slow blocking waits, never the hot path.
    pub fn set_status(&self, line: impl FnOnce() -> String) {
        #[cfg(feature = "flight-recorder")]
        if let Some(s) = &self.shared {
            let t = s.t_us();
            *s.status.lock() = Some((t, line()));
        }
        #[cfg(not(feature = "flight-recorder"))]
        let _ = line;
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Recorder({})", if self.is_enabled() { "on" } else { "off" })
    }
}

/// Run-wide collector: owns one ring per rank and produces handles, the
/// post-run [`FlightLog`], and the watchdog dump.
pub struct FlightRecorder {
    #[cfg(feature = "flight-recorder")]
    rings: Vec<Arc<RecorderShared>>,
}

impl FlightRecorder {
    /// Recorder for `ranks` ranks with `capacity` events retained per rank.
    /// Without the `flight-recorder` cargo feature this is always disabled.
    pub fn new(ranks: usize, capacity: usize) -> Self {
        #[cfg(feature = "flight-recorder")]
        {
            let start = Instant::now();
            FlightRecorder {
                rings: (0..ranks).map(|_| Arc::new(RecorderShared::new(start, capacity))).collect(),
            }
        }
        #[cfg(not(feature = "flight-recorder"))]
        {
            let _ = (ranks, capacity);
            FlightRecorder {}
        }
    }

    /// A collector that records nothing and hands out disabled handles.
    pub fn disabled() -> Self {
        FlightRecorder {
            #[cfg(feature = "flight-recorder")]
            rings: Vec::new(),
        }
    }

    /// Is recording active?
    pub fn enabled(&self) -> bool {
        #[cfg(feature = "flight-recorder")]
        {
            !self.rings.is_empty()
        }
        #[cfg(not(feature = "flight-recorder"))]
        {
            false
        }
    }

    /// The recording handle for `rank` (shared across its incarnations — a
    /// restarted rank keeps appending to the same track).
    pub fn handle(&self, rank: RankId) -> Recorder {
        #[cfg(feature = "flight-recorder")]
        {
            Recorder { shared: self.rings.get(rank.idx()).map(Arc::clone) }
        }
        #[cfg(not(feature = "flight-recorder"))]
        {
            let _ = rank;
            Recorder::disabled()
        }
    }

    /// Snapshot every rank's retained events (oldest first per rank).
    pub fn snapshot(&self) -> FlightLog {
        #[cfg(feature = "flight-recorder")]
        {
            self.rings.iter().enumerate().map(|(i, r)| r.trace(i as u32)).collect()
        }
        #[cfg(not(feature = "flight-recorder"))]
        {
            Vec::new()
        }
    }

    /// Human-readable dump for hang diagnostics: per rank, the last
    /// checkpoint-phase event, the published stall status (channel
    /// watermarks), and the newest `tail` events.
    pub fn dump(&self, tail: usize) -> String {
        let log = self.snapshot();
        let mut out = String::new();
        out.push_str("=== flight recorder dump ===\n");
        if log.is_empty() {
            out.push_str("(recorder disabled)\n");
            return out;
        }
        for t in &log {
            let total = t.dropped + t.events.len() as u64;
            out.push_str(&format!(
                "-- rank {}: {} events recorded ({} evicted)\n",
                t.rank, total, t.dropped
            ));
            let last_ckpt = t.events.iter().rev().find(|e| matches!(e.event, Event::Ckpt { .. }));
            match last_ckpt {
                Some(e) => {
                    out.push_str(&format!("   last ckpt phase: [{}us] {}\n", e.t_us, e.event))
                }
                None => out.push_str("   last ckpt phase: none\n"),
            }
            // Finer-grained than the protocol phase above: which *timed*
            // lifecycle stage last finished, so a stuck wave points at the
            // stage after it.
            let last_done =
                t.events.iter().rev().find(|e| matches!(e.event, Event::CkptPhaseDone { .. }));
            match last_done {
                Some(e) => {
                    out.push_str(&format!("   last completed phase: [{}us] {}\n", e.t_us, e.event))
                }
                None => out.push_str("   last completed phase: none\n"),
            }
            if let Some((t_us, line)) = &t.status {
                out.push_str(&format!("   status @{t_us}us: {line}\n"));
            }
            let skip = t.events.len().saturating_sub(tail);
            for e in &t.events[skip..] {
                out.push_str(&format!("   [{:>10}us #{:>6}] {}\n", e.t_us, e.seq, e.event));
            }
        }
        out
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FlightRecorder({})", if self.enabled() { "on" } else { "off" })
    }
}

#[cfg(all(test, feature = "flight-recorder"))]
mod tests {
    use super::*;

    fn send(seq: u64) -> Event {
        Event::Send { dst: RankId(1), comm: 0, tag: 1, seqnum: seq, bytes: 8, suppressed: false }
    }

    #[test]
    fn wraparound_keeps_newest() {
        let fr = FlightRecorder::new(1, 8);
        let rec = fr.handle(RankId(0));
        for s in 0..20u64 {
            rec.record(|| send(s));
        }
        let log = fr.snapshot();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].events.len(), 8);
        assert_eq!(log[0].dropped, 12);
        let seqs: Vec<u64> = log[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        match &log[0].events.last().unwrap().event {
            Event::Send { seqnum, .. } => assert_eq!(*seqnum, 19),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn drain_is_per_rank_monotone() {
        let fr = FlightRecorder::new(2, 64);
        let (a, b) = (fr.handle(RankId(0)), fr.handle(RankId(1)));
        for s in 0..40u64 {
            a.record(|| send(s));
            if s % 2 == 0 {
                b.record(|| Event::Ckpt { epoch: s, phase: CkptPhase::Init });
            }
        }
        for t in fr.snapshot() {
            for w in t.events.windows(2) {
                assert!(w[0].seq < w[1].seq, "seq monotone");
                assert!(w[0].t_us <= w[1].t_us, "time monotone");
            }
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let fr = FlightRecorder::disabled();
        assert!(!fr.enabled());
        let rec = fr.handle(RankId(0));
        assert!(!rec.is_enabled());
        rec.record(|| panic!("closure must not run when disabled"));
        assert!(fr.snapshot().is_empty());
        assert!(fr.dump(8).contains("disabled"));
    }

    #[test]
    fn dump_names_ckpt_phase_and_status() {
        let fr = FlightRecorder::new(2, 16);
        let rec = fr.handle(RankId(0));
        rec.record(|| Event::Ckpt { epoch: 3, phase: CkptPhase::Init });
        rec.record(|| Event::CkptPhaseDone { epoch: 3, phase: "encode", us: 42 });
        rec.record(|| Event::Stall { what: "checkpoint".into() });
        rec.set_status(|| "send_seq=[1/c0=>5]".into());
        let dump = fr.dump(8);
        assert!(dump.contains("rank 0"));
        assert!(dump.contains("ckpt e3 Init"));
        assert!(dump.contains("last completed phase:"), "{dump}");
        assert!(dump.contains("ckpt-phase e3 encode 42us"), "{dump}");
        assert!(dump.contains("STALL in checkpoint"));
        assert!(dump.contains("send_seq=[1/c0=>5]"));
        assert!(dump.contains("rank 1"), "every rank appears, even if idle");
        assert!(dump.contains("last completed phase: none"), "idle rank has no phase: {dump}");
    }

    #[test]
    fn storage_events_render() {
        let cases: Vec<(Event, &str)> = vec![
            (
                Event::CkptWrite { epoch: 2, bytes: 24, logical: 64, phase: WritePhase::Submitted },
                "ckpt-write e2 24B/64B Submitted",
            ),
            (
                Event::CkptReplPush { partner: RankId(5), epoch: 2, bytes: 64 },
                "repl-push ->5 e2 64B",
            ),
            (
                Event::CkptReplStore { owner: RankId(1), epoch: 2, bytes: 64 },
                "repl-store for 1 e2 64B",
            ),
            (Event::CkptReplAck { partner: RankId(5), epoch: 2 }, "repl-ack <-5 e2"),
            (Event::CkptRepair { epoch: 2, from: RankId(5) }, "ckpt-repair e2 from 5"),
            (Event::CkptRebuild { epoch: 2, set_id: 1 }, "ckpt-rebuild e2 set 1"),
            (Event::CkptGc { pruned: 3, keep_from: 4 }, "ckpt-gc pruned=3 keep-from=e4"),
            (
                Event::CkptPhaseDone { epoch: 2, phase: "commit_barrier", us: 1500 },
                "ckpt-phase e2 commit_barrier 1500us",
            ),
        ];
        for (ev, want) in cases {
            assert_eq!(ev.to_string(), want);
        }
    }

    #[test]
    fn handle_out_of_range_is_disabled() {
        let fr = FlightRecorder::new(1, 4);
        assert!(!fr.handle(RankId(7)).is_enabled());
    }
}

#[cfg(all(test, not(feature = "flight-recorder")))]
mod nofeature_tests {
    use super::*;

    #[test]
    fn everything_is_a_noop() {
        let fr = FlightRecorder::new(4, 128);
        assert!(!fr.enabled(), "feature off: new() builds a disabled collector");
        let rec = fr.handle(RankId(0));
        assert!(!rec.is_enabled());
        rec.record(|| Event::RankDone);
        rec.set_status(|| "x".into());
        assert!(fr.snapshot().is_empty());
        assert!(fr.dump(8).contains("disabled"));
    }
}
