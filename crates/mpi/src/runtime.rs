//! The runtime: spawns ranks as OS threads, routes packets, injects failures,
//! and orchestrates cluster rollback/restart.
//!
//! Execution model:
//! * every application rank runs its closure on its own thread;
//! * a rank that finishes **lingers**, pumping control traffic, so it can keep
//!   serving log replays to clusters that are still recovering;
//! * when a rank hits a failure plan, the runtime kills *its whole cluster*
//!   (the containment unit of hierarchical protocols), drops the victims'
//!   mailboxes (in-flight messages die with the node), and respawns them with
//!   an incremented epoch — the fault-tolerance layer's `on_start` then
//!   restores the checkpoint and runs the rollback handshake.

use crate::config::{RuntimeConfig, Topology, TransportKind};
use crate::error::{MpiError, Result};
use crate::failure::{FailurePlan, FailureShared, RuntimeEvent};
use crate::ft::{FtCtx, FtProvider, NativeProvider};
use crate::inner::{handle_packet, RankInner};
use crate::rank::Rank;
use crate::recorder::{Event, FlightLog, FlightRecorder};
use crate::router::Router;
use crate::stats::RankStats;
use crate::transport::uds::UdsTransport;
use crate::transport::{InProcTransport, Mailbox, RecvTimeoutErr, Transport};
use crate::types::RankId;
use crossbeam_channel::{unbounded, RecvTimeoutError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Application entry point: one closure, run by every rank (SPMD).
pub type AppFn = dyn Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync;

/// Result of a run.
#[derive(Debug)]
pub struct RunReport {
    /// Application output per world rank (last successful execution).
    pub outputs: Vec<Vec<u8>>,
    /// Statistics per world rank (snapshot at application completion).
    pub stats: Vec<RankStats>,
    /// Wall-clock time of the whole run.
    pub wall_time: Duration,
    /// Number of injected failures that were handled.
    pub failures_handled: usize,
    /// Restart count per world rank.
    pub restarts: Vec<u32>,
    /// Errors reported by ranks (empty on a clean run).
    pub errors: Vec<(RankId, String)>,
    /// Flight-recorder event log, one trace per rank (present when
    /// `RuntimeConfig::flight_recorder` was set). Feed to the `spbc-trace`
    /// Chrome exporter for a Perfetto-loadable timeline.
    pub flight: Option<FlightLog>,
    /// The hang watchdog's human-readable dump, captured when the run ended
    /// in error with the recorder enabled.
    pub flight_dump: Option<String>,
}

impl RunReport {
    /// Error out unless the run was clean.
    pub fn ok(self) -> Result<RunReport> {
        if let Some((rank, msg)) = self.errors.first() {
            return Err(MpiError::App(format!("rank {rank}: {msg}")));
        }
        Ok(self)
    }
}

/// The execution driver.
pub struct Runtime {
    cfg: Arc<RuntimeConfig>,
}

struct Spawner {
    cfg: Arc<RuntimeConfig>,
    router: Arc<Router>,
    global_done: Arc<AtomicBool>,
    failure: Arc<FailureShared>,
    provider: Arc<dyn FtProvider>,
    app: Arc<AppFn>,
    service: Option<Arc<AppFn>>,
    flight: Arc<FlightRecorder>,
}

/// Fluent construction of a run: configuration, protocol provider,
/// application closure, failure schedule and optional service closure in one
/// chain, launched with [`RunBuilder::launch`].
///
/// ```ignore
/// let report = Runtime::builder(RuntimeConfig::new(8))
///     .provider(Arc::new(SpbcProvider::new(clusters, cfg)))
///     .app(workload.build(params))
///     .plans([FailurePlan::nth(RankId(3), 7)])
///     .launch()?;
/// ```
pub struct RunBuilder {
    cfg: RuntimeConfig,
    provider: Arc<dyn FtProvider>,
    app: Option<Arc<AppFn>>,
    service: Option<Arc<AppFn>>,
    plans: Vec<FailurePlan>,
}

impl RunBuilder {
    /// The fault-tolerance provider (defaults to [`NativeProvider`]).
    pub fn provider(mut self, provider: Arc<dyn FtProvider>) -> Self {
        self.provider = provider;
        self
    }

    /// The application closure every rank runs (required).
    pub fn app(mut self, app: Arc<AppFn>) -> Self {
        self.app = Some(app);
        self
    }

    /// Convenience: set the application from a plain closure.
    pub fn app_fn(self, f: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static) -> Self {
        self.app(Arc::new(f))
    }

    /// Append failure plans to the chaos schedule.
    pub fn plans(mut self, plans: impl IntoIterator<Item = FailurePlan>) -> Self {
        self.plans.extend(plans);
        self
    }

    /// Append one failure plan.
    pub fn plan(mut self, plan: FailurePlan) -> Self {
        self.plans.push(plan);
        self
    }

    /// Apply a [`Topology`]: rank count and transport choice in one entry.
    /// (The cluster layout goes to the protocol provider's `ClusterMap`;
    /// the runtime itself only needs the world size and the fabric.)
    pub fn topology(mut self, t: &Topology) -> Self {
        self.cfg.world_size = t.ranks;
        self.cfg.transport = t.transport;
        self
    }

    /// The closure run by the configured service ranks.
    pub fn service(mut self, service: Arc<AppFn>) -> Self {
        self.service = Some(service);
        self
    }

    /// Convenience: set the service closure from a plain closure.
    pub fn service_fn(
        self,
        f: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static,
    ) -> Self {
        self.service(Arc::new(f))
    }

    /// Execute the run.
    pub fn launch(self) -> Result<RunReport> {
        let app = self.app.ok_or_else(|| MpiError::invalid("RunBuilder without an app"))?;
        Runtime::new(self.cfg).run_inner(self.provider, app, self.plans, self.service)
    }
}

impl Runtime {
    /// Create a runtime for `cfg`.
    pub fn new(cfg: RuntimeConfig) -> Self {
        Runtime { cfg: Arc::new(cfg) }
    }

    /// Start building a run for `cfg` (see [`RunBuilder`]).
    pub fn builder(cfg: RuntimeConfig) -> RunBuilder {
        RunBuilder {
            cfg,
            provider: Arc::new(NativeProvider),
            app: None,
            service: None,
            plans: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.cfg
    }

    /// Convenience: run `app` natively (no fault tolerance, no failures).
    pub fn run_native(
        world: usize,
        app: impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static,
    ) -> Result<RunReport> {
        Runtime::builder(RuntimeConfig::new(world)).app_fn(app).launch()
    }

    fn run_inner(
        &self,
        provider: Arc<dyn FtProvider>,
        app: Arc<AppFn>,
        plans: Vec<FailurePlan>,
        service: Option<Arc<AppFn>>,
    ) -> Result<RunReport> {
        let world = self.cfg.world_size;
        let total = self.cfg.total_ranks();
        if world == 0 {
            return Err(MpiError::invalid("world_size must be positive"));
        }
        if self.cfg.service_ranks > 0 && service.is_none() {
            return Err(MpiError::invalid("service ranks configured but no service closure"));
        }

        let start = Instant::now();
        let transport: Arc<dyn Transport> = match self.cfg.transport {
            TransportKind::InProc => Arc::new(InProcTransport::new(total)),
            TransportKind::Uds => Arc::new(UdsTransport::loopback(total)?),
        };
        let mut mailboxes: Vec<Box<dyn Mailbox>> =
            (0..total).map(|i| transport.open(RankId(i as u32))).collect();
        let router = Arc::new(Router::over(transport));
        let (evt_tx, evt_rx) = unbounded();
        let failure = Arc::new(FailureShared::new(total, evt_tx));
        for p in plans {
            failure.schedule(p);
        }
        let global_done = Arc::new(AtomicBool::new(false));
        let flight = Arc::new(match self.cfg.flight_recorder {
            Some(cap) => FlightRecorder::new(total, cap),
            None => FlightRecorder::disabled(),
        });

        let spawner = Spawner {
            cfg: Arc::clone(&self.cfg),
            router,
            global_done: Arc::clone(&global_done),
            failure: Arc::clone(&failure),
            provider: Arc::clone(&provider),
            app,
            service,
            flight: Arc::clone(&flight),
        };

        let mut handles: Vec<Option<JoinHandle<()>>> = Vec::with_capacity(total);
        let mut epochs: Vec<u32> = vec![0; total];
        for (i, rx) in mailboxes.drain(..).enumerate() {
            handles.push(Some(spawner.spawn(RankId(i as u32), 0, rx)));
        }

        let mut report = RunReport {
            outputs: vec![Vec::new(); world],
            stats: (0..world).map(|i| RankStats::new(RankId(i as u32), world)).collect(),
            wall_time: Duration::ZERO,
            failures_handled: 0,
            restarts: vec![0; world],
            errors: Vec::new(),
            flight: None,
            flight_dump: None,
        };
        let mut done = vec![false; world];
        let mut done_count = 0usize;
        let backstop = self.cfg.deadlock_timeout + Duration::from_secs(15);

        let outcome = loop {
            match evt_rx.recv_timeout(backstop) {
                Ok(RuntimeEvent::Done { rank, output }) => {
                    let i = rank.idx();
                    if !done[i] {
                        done[i] = true;
                        done_count += 1;
                    }
                    report.outputs[i] = output;
                    if done_count == world {
                        break Ok(());
                    }
                }
                Ok(RuntimeEvent::Failure { rank }) => {
                    report.failures_handled += 1;
                    // The crashed rank (only) may lose node-local storage;
                    // its cluster siblings die for containment, not for real,
                    // so their local stores survive the respawn.
                    provider.on_rank_failed(rank);
                    let cluster = provider.cluster_of(rank);
                    let victims: Vec<RankId> = (0..world as u32)
                        .map(RankId)
                        .filter(|&r| provider.cluster_of(r) == cluster)
                        .collect();
                    // Kill the whole cluster, wait for the threads to unwind,
                    // then restart them from their checkpoint.
                    for &v in &victims {
                        failure.kill(v);
                    }
                    for &v in &victims {
                        if let Some(h) = handles[v.idx()].take() {
                            let _ = h.join();
                        }
                        if done[v.idx()] {
                            done[v.idx()] = false;
                            done_count -= 1;
                        }
                    }
                    // Replace every victim's mailbox BEFORE respawning any of
                    // them: a respawned rank starts sending immediately, and
                    // an intra-cluster message to a sibling whose mailbox is
                    // still the dead incarnation's would be silently lost —
                    // intra-cluster channels have no log to recover from.
                    let fresh: Vec<_> =
                        victims.iter().map(|&v| spawner.router.replace(v)).collect();
                    for (&v, rx) in victims.iter().zip(fresh) {
                        failure.revive(v);
                        epochs[v.idx()] += 1;
                        report.restarts[v.idx()] = epochs[v.idx()];
                        handles[v.idx()] = Some(spawner.spawn(v, epochs[v.idx()], rx));
                    }
                    // Arm AfterRecovery chaos triggers: the cluster is
                    // respawned but its recovery (rollback handshake, replay)
                    // is only beginning — armed victims land mid-recovery.
                    failure.note_recovery(cluster);
                }
                Ok(RuntimeEvent::Error { rank, message }) => {
                    report.errors.push((rank, message));
                    // Grace period: when one rank reports (e.g. a suspected
                    // deadlock), its peers are usually blocked too — collect
                    // their reports so the diagnostics show the whole
                    // wait-for graph.
                    let grace = Instant::now() + Duration::from_millis(1500);
                    while let Ok(ev) =
                        evt_rx.recv_timeout(grace.saturating_duration_since(Instant::now()))
                    {
                        if let RuntimeEvent::Error { rank, message } = ev {
                            report.errors.push((rank, message));
                        }
                    }
                    break Err(());
                }
                Ok(RuntimeEvent::Killed { .. }) => {
                    // Expected during cluster rollback; the Failure arm joins.
                }
                Err(RecvTimeoutError::Timeout) => {
                    report
                        .errors
                        .push((RankId(u32::MAX), "runtime backstop: no progress events".into()));
                    break Err(());
                }
                Err(RecvTimeoutError::Disconnected) => break Err(()),
            }
        };

        // Tear down: release lingering ranks and service ranks.
        global_done.store(true, Ordering::SeqCst);
        if outcome.is_err() {
            // Hang watchdog: before killing anything, dump every rank's
            // recent protocol events and published watermark status so the
            // failure mode is an interleaving, not a bare timeout.
            if flight.enabled() {
                let dump = flight.dump(32);
                eprintln!("{dump}");
                report.flight_dump = Some(dump);
            }
            for i in 0..total {
                failure.kill(RankId(i as u32));
            }
        }
        // Collect remaining Done/stat events that raced with completion.
        while let Ok(ev) = evt_rx.try_recv() {
            if let RuntimeEvent::Error { rank, message } = ev {
                report.errors.push((rank, message));
            }
        }
        for h in handles.iter_mut().filter_map(Option::take) {
            let _ = h.join();
        }
        report.wall_time = start.elapsed();
        // Stats come back through a side channel written at thread exit.
        for (i, slot) in spawner.failure.stats_slots().iter().enumerate().take(world) {
            if let Some(s) = slot.lock().take() {
                report.stats[i] = *s;
            }
        }
        if flight.enabled() {
            report.flight = Some(flight.snapshot());
        }
        Ok(report)
    }
}

/// Identity of one `spbc-node` process in a multi-process run: which slice
/// of the world it hosts and where its coordinator listens.
#[derive(Clone, Debug)]
pub struct NodeOpts {
    /// The coordinator's Unix socket.
    pub socket: std::path::PathBuf,
    /// Node index (cluster index under one-cluster-per-node).
    pub node: u32,
    /// Restart epoch of this incarnation (0 = first launch). Every hosted
    /// rank starts at this epoch, so a respawned node restores from its
    /// checkpoints exactly like an in-process cluster restart.
    pub epoch: u32,
    /// First world rank hosted here.
    pub first_rank: u32,
    /// Number of (contiguous) ranks hosted here.
    pub hosted: usize,
}

impl Runtime {
    /// Run one node of a multi-process world: spawn this node's ranks as
    /// threads over a [`UdsTransport`] endpoint, report their lifecycle to
    /// the coordinator, and stay up — lingering ranks keep serving log
    /// replays — until the coordinator broadcasts shutdown.
    ///
    /// Failure semantics are the whole point: when an injected failure plan
    /// fires, the **process aborts** (`SIGABRT`, no destructors — the moral
    /// equivalent of the `kill -9` the chaos engine also delivers
    /// externally). The node is the cluster is the containment unit; the
    /// coordinator respawns it with `epoch + 1` and the protocol restores
    /// from checkpoints that survived on disk.
    pub fn run_node(
        cfg: RuntimeConfig,
        opts: &NodeOpts,
        provider: Arc<dyn FtProvider>,
        app: Arc<AppFn>,
        plans: Vec<FailurePlan>,
    ) -> Result<()> {
        if cfg.service_ranks > 0 {
            return Err(MpiError::invalid("multi-process runs host application ranks only"));
        }
        let world = cfg.world_size;
        if opts.hosted == 0 || opts.first_rank as usize + opts.hosted > world {
            return Err(MpiError::invalid(format!(
                "node hosts ranks {}..{} of a {world}-rank world",
                opts.first_rank,
                opts.first_rank as usize + opts.hosted
            )));
        }
        let cfg = Arc::new(cfg);
        let uds = Arc::new(UdsTransport::node(
            &opts.socket,
            opts.node,
            opts.epoch,
            opts.first_rank,
            opts.hosted,
            world,
        )?);
        let transport: Arc<dyn Transport> = Arc::clone(&uds) as Arc<dyn Transport>;
        let hosted: Vec<RankId> =
            (0..opts.hosted).map(|i| RankId(opts.first_rank + i as u32)).collect();
        let mut mailboxes: Vec<Box<dyn Mailbox>> =
            hosted.iter().map(|&r| transport.open(r)).collect();
        let router = Arc::new(Router::over(transport));
        let (evt_tx, evt_rx) = unbounded();
        let failure = Arc::new(FailureShared::new(world, evt_tx));
        for p in plans {
            failure.schedule(p);
        }
        let global_done = Arc::new(AtomicBool::new(false));
        let flight = Arc::new(match cfg.flight_recorder {
            Some(cap) => FlightRecorder::new(world, cap),
            None => FlightRecorder::disabled(),
        });
        let spawner = Spawner {
            cfg: Arc::clone(&cfg),
            router,
            global_done: Arc::clone(&global_done),
            failure,
            provider,
            app,
            service: None,
            flight,
        };
        let mut handles: Vec<JoinHandle<()>> = Vec::with_capacity(opts.hosted);
        for (&r, mb) in hosted.iter().zip(mailboxes.drain(..)) {
            handles.push(spawner.spawn(r, opts.epoch, mb));
        }

        let poll = Duration::from_millis(25);
        let outcome = loop {
            if uds.shutdown_requested() {
                break Ok(());
            }
            match evt_rx.recv_timeout(poll) {
                Ok(RuntimeEvent::Done { rank, output }) => {
                    if uds
                        .send_event(crate::transport::frame::NodeEvent::Done { rank, output })
                        .is_err()
                    {
                        // Coordinator gone mid-run: nothing left to serve.
                        break Ok(());
                    }
                }
                Ok(RuntimeEvent::Error { rank, message }) => {
                    // Report and keep pumping: the coordinator decides
                    // whether the run is over.
                    let _ =
                        uds.send_event(crate::transport::frame::NodeEvent::Error { rank, message });
                }
                Ok(RuntimeEvent::Failure { .. }) => {
                    // An injected failure: die like a node. No destructors,
                    // no flushes — the coordinator sees the process vanish.
                    std::process::abort();
                }
                Ok(RuntimeEvent::Killed { .. }) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break Ok(()),
            }
        };
        global_done.store(true, Ordering::SeqCst);
        for h in handles {
            let _ = h.join();
        }
        outcome
    }
}

impl Spawner {
    fn spawn(&self, me: RankId, epoch: u32, mailbox: Box<dyn Mailbox>) -> JoinHandle<()> {
        let cfg = Arc::clone(&self.cfg);
        let router = Arc::clone(&self.router);
        let global_done = Arc::clone(&self.global_done);
        let failure = Arc::clone(&self.failure);
        let provider = Arc::clone(&self.provider);
        let is_service = me.idx() >= cfg.world_size;
        let app: Arc<AppFn> = if is_service {
            Arc::clone(self.service.as_ref().expect("service closure"))
        } else {
            Arc::clone(&self.app)
        };
        let recorder = self.flight.handle(me);
        let name = format!("rank-{me}-e{epoch}");
        std::thread::Builder::new()
            .name(name)
            .spawn(move || {
                let t0 = Instant::now();
                let kill = failure.kill_flag(me);
                let mut inner = RankInner::new(
                    me,
                    cfg,
                    epoch,
                    mailbox,
                    router,
                    kill,
                    Arc::clone(&global_done),
                    Arc::clone(&failure),
                );
                inner.recorder = recorder;
                inner.stats.digest_payloads = inner.cfg.payload_digests;
                inner.recorder.record(|| Event::RankStart { epoch });
                let layer = provider.make_layer(me, epoch);
                let mut rank = Rank::new(inner, layer);
                rank.inner.stats.restarts = epoch;

                let result = {
                    let started = {
                        let mut ctx = FtCtx { inner: &mut rank.inner };
                        rank.ft.on_start(&mut ctx)
                    };
                    started.and_then(|_| (app)(&mut rank))
                };

                match result {
                    Ok(output) => {
                        {
                            let mut ctx = FtCtx { inner: &mut rank.inner };
                            let _ = rank.ft.on_app_done(&mut ctx);
                        }
                        rank.inner.recorder.record(|| Event::RankDone);
                        rank.inner.stats.total_time = t0.elapsed();
                        failure.set_stats(me, rank.inner.stats.clone());
                        failure.report(RuntimeEvent::Done { rank: me, output });
                        linger(&mut rank);
                    }
                    Err(MpiError::Killed) => {
                        rank.inner.recorder.record(|| Event::RankKilled);
                        failure.set_stats(me, rank.inner.stats.clone());
                        failure.report(RuntimeEvent::Killed { rank: me });
                    }
                    Err(e) => {
                        rank.inner.recorder.record(|| Event::RankError);
                        rank.inner.stats.total_time = t0.elapsed();
                        failure.set_stats(me, rank.inner.stats.clone());
                        failure.report(RuntimeEvent::Error { rank: me, message: e.to_string() });
                    }
                }
            })
            .expect("spawn rank thread")
    }
}

/// After its application finished, a rank keeps serving protocol traffic
/// (log replay for recovering clusters) until the whole run completes or it
/// is itself rolled back.
fn linger(rank: &mut Rank) {
    loop {
        if rank.inner.global_done.load(Ordering::Relaxed) {
            return;
        }
        if rank.inner.kill.load(Ordering::Relaxed) {
            rank.inner.failure.report(RuntimeEvent::Killed { rank: rank.inner.me });
            return;
        }
        match rank.inner.mailbox.recv_timeout(rank.inner.cfg.poll_interval) {
            Ok(pkt) => {
                if handle_packet(&mut rank.inner, rank.ft.as_mut(), pkt).is_err() {
                    return;
                }
            }
            Err(RecvTimeoutErr::Timeout) => {}
            Err(RecvTimeoutErr::Disconnected) => return,
        }
    }
}
