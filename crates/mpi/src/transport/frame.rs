//! The socket frame protocol of [`super::uds::UdsTransport`].
//!
//! Every frame is a `u32` little-endian body length followed by the
//! `wire`-encoded [`Frame`]. The length is capped ([`MAX_FRAME`]) so a
//! corrupt or hostile stream fails loudly instead of allocating the moon;
//! truncated bodies are rejected by the codec's bounds-checked reader.
//!
//! The same frames serve both fabric shapes:
//!
//! * **loopback** — one process, one hub thread: `Deliver` carries every
//!   packet, `Repoint` is the restart barrier (processed in stream order,
//!   so traffic sent before it lands in the old incarnation's mailbox);
//! * **multi-process** — `spbc-node` processes dial the coordinator:
//!   `Hello` registers a node's ranks after (re)connect, `Deliver` is
//!   routed between nodes, `Event` carries rank completions up to the
//!   coordinator, and `Shutdown` releases lingering nodes when the run
//!   completes.

use crate::envelope::Packet;
use crate::error::{MpiError, Result};
use crate::types::RankId;
use crate::wire::{to_bytes, Decode, Encode, Reader};
use std::io::{Read, Write};

/// Upper bound on a frame body, in bytes. Generous for checkpoint-blob
/// control messages, small enough that a corrupt length prefix cannot OOM
/// the reader.
pub const MAX_FRAME: usize = 256 * 1024 * 1024;

/// A rank-lifecycle event a node reports to its coordinator.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeEvent {
    /// A rank's application closure returned; `output` is its result bytes.
    Done {
        /// The finished rank.
        rank: RankId,
        /// The application output.
        output: Vec<u8>,
    },
    /// A rank failed with an error (deadlock suspicion, app error, ...).
    Error {
        /// The failing rank.
        rank: RankId,
        /// Human-readable cause.
        message: String,
    },
}

/// One unit on a transport socket.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// A (re)connecting node announces which endpoint it is and its restart
    /// epoch; the hub repoints the node's ranks at this connection.
    Hello {
        /// Node index (cluster index in the one-cluster-per-node layout).
        node: u32,
        /// Restart epoch of this incarnation (0 = first launch).
        epoch: u32,
    },
    /// Deliver `pkt` to `dst`'s mailbox, wherever it lives.
    Deliver {
        /// Destination world rank.
        dst: RankId,
        /// The packet.
        pkt: Packet,
    },
    /// Loopback restart barrier: repoint `rank`'s slot at a fresh mailbox.
    /// Frames written before this one drain to the old incarnation.
    Repoint {
        /// The restarting rank.
        rank: RankId,
    },
    /// A rank-lifecycle event for the coordinator.
    Event(NodeEvent),
    /// The run is complete: lingering ranks may exit.
    Shutdown,
}

impl Encode for NodeEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            NodeEvent::Done { rank, output } => {
                0u8.encode(out);
                rank.encode(out);
                output.encode(out);
            }
            NodeEvent::Error { rank, message } => {
                1u8.encode(out);
                rank.encode(out);
                message.encode(out);
            }
        }
    }
}

impl Decode for NodeEvent {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::decode(r)? {
            0 => NodeEvent::Done { rank: Decode::decode(r)?, output: Decode::decode(r)? },
            1 => NodeEvent::Error { rank: Decode::decode(r)?, message: Decode::decode(r)? },
            k => return Err(MpiError::Codec(format!("bad NodeEvent discriminant {k}"))),
        })
    }
}

impl Encode for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { node, epoch } => {
                0u8.encode(out);
                node.encode(out);
                epoch.encode(out);
            }
            Frame::Deliver { dst, pkt } => {
                1u8.encode(out);
                dst.encode(out);
                pkt.encode(out);
            }
            Frame::Repoint { rank } => {
                2u8.encode(out);
                rank.encode(out);
            }
            Frame::Event(ev) => {
                3u8.encode(out);
                ev.encode(out);
            }
            Frame::Shutdown => 4u8.encode(out),
        }
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(match u8::decode(r)? {
            0 => Frame::Hello { node: Decode::decode(r)?, epoch: Decode::decode(r)? },
            1 => Frame::Deliver { dst: Decode::decode(r)?, pkt: Decode::decode(r)? },
            2 => Frame::Repoint { rank: Decode::decode(r)? },
            3 => Frame::Event(NodeEvent::decode(r)?),
            4 => Frame::Shutdown,
            k => return Err(MpiError::Codec(format!("bad Frame discriminant {k}"))),
        })
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> std::io::Result<()> {
    let body = to_bytes(frame);
    debug_assert!(body.len() <= MAX_FRAME, "frame body exceeds MAX_FRAME");
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)?;
    w.flush()
}

/// Read one length-prefixed frame. `Ok(None)` on clean EOF (the peer closed
/// between frames); anything else — truncation mid-frame, an oversized
/// length, a malformed body — is a loud error.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Frame>> {
    let mut len = [0u8; 4];
    let mut got = 0;
    while got < len.len() {
        match r.read(&mut len[got..]) {
            // EOF before any byte of the prefix is a clean close; EOF inside
            // the prefix is a truncated frame.
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "truncated frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::other(format!("frame length {len} exceeds cap {MAX_FRAME}")));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    crate::wire::from_bytes(&body).map(Some).map_err(std::io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::CtrlMsg;
    use bytes::Bytes;

    fn frames() -> Vec<Frame> {
        vec![
            Frame::Hello { node: 3, epoch: 2 },
            Frame::Deliver {
                dst: RankId(5),
                pkt: Packet::Ctrl(CtrlMsg {
                    from: RankId(1),
                    kind: 9,
                    data: Bytes::from(vec![1u8, 2, 3]),
                }),
            },
            Frame::Repoint { rank: RankId(4) },
            Frame::Event(NodeEvent::Done { rank: RankId(0), output: vec![7, 7] }),
            Frame::Event(NodeEvent::Error { rank: RankId(2), message: "boom".into() }),
            Frame::Shutdown,
        ]
    }

    #[test]
    fn stream_roundtrip() {
        let mut buf = Vec::new();
        for f in frames() {
            write_frame(&mut buf, &f).unwrap();
        }
        let mut cur = std::io::Cursor::new(buf);
        for want in frames() {
            assert_eq!(read_frame(&mut cur).unwrap().unwrap(), want);
        }
        assert!(read_frame(&mut cur).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncation_is_loud() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frames()[1]).unwrap();
        for cut in [3, 5, buf.len() - 1] {
            let mut cur = std::io::Cursor::new(&buf[..cut]);
            assert!(read_frame(&mut cur).is_err(), "cut at {cut} must error");
        }
    }

    #[test]
    fn oversized_length_rejected() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(read_frame(&mut std::io::Cursor::new(buf)).is_err());
    }
}
