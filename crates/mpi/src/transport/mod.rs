//! The pluggable message fabric behind the [`crate::router::Router`].
//!
//! A [`Transport`] owns one *endpoint* per rank: a slot peers send through
//! and a [`Mailbox`] the owning rank receives from. The contract every
//! implementation must honor (the transport conformance suite in
//! `tests/transport_conformance.rs` checks it against each one):
//!
//! * **Per-channel FIFO** — packets from one sender to one destination are
//!   delivered in send order (MPI's ordering guarantee, Section 3.1).
//! * **Drop on dead slot** — once a rank's mailbox is dropped (the rank
//!   died), packets sent to it are discarded, like packets on a wire to a
//!   crashed node. [`Transport::send`] reports the discard with `false`.
//! * **Repoint on restart** — [`Transport::replace`] atomically repoints a
//!   rank's slot at a fresh mailbox. Everything still queued for the old
//!   incarnation (conceptually "in flight at the moment of the crash") dies
//!   with it; the protocol layer regenerates lost traffic from its
//!   sender-side logs.
//!
//! Two implementations ship: [`InProcTransport`] (crossbeam channels, every
//! rank a thread — the allocation-lean fast path every existing test runs
//! on) and [`uds::UdsTransport`] (length-prefixed frames over Unix-domain
//! sockets — the wire path `spbc-node` processes talk over).

use crate::envelope::Packet;
use crate::types::RankId;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::time::Duration;

pub mod frame;
pub mod uds;

/// Why a timed mailbox receive returned without a packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecvTimeoutErr {
    /// Nothing arrived within the timeout; the endpoint is still live.
    Timeout,
    /// The endpoint was torn down underneath the receiver: its slot was
    /// repointed (this incarnation is being restarted) or the transport is
    /// shutting down. Blocking waits translate this to `MpiError::Killed`.
    Disconnected,
}

/// The receiving end of one rank's endpoint.
pub trait Mailbox: Send {
    /// Take one packet if one is immediately available.
    fn try_recv(&self) -> Option<Packet>;

    /// Wait up to `timeout` for one packet.
    fn recv_timeout(&self, timeout: Duration) -> Result<Packet, RecvTimeoutErr>;
}

/// A message fabric: one endpoint per rank, slots repointable on restart.
pub trait Transport: Send + Sync {
    /// Number of endpoints (world + service ranks).
    fn ranks(&self) -> usize;

    /// Deliver `pkt` to `dst`'s mailbox, preserving per-sender FIFO order.
    /// Returns `false` when the packet was discarded: `dst` is unknown, or
    /// its endpoint is known (locally) to be dead. A wire transport may
    /// return `true` for a remote destination that already died — the
    /// discard then happens at the far end, as on a real network.
    fn send(&self, dst: RankId, pkt: Packet) -> bool;

    /// Take the initial mailbox of `rank`.
    ///
    /// # Panics
    /// Panics if called twice for the same rank without an intervening
    /// [`Transport::replace`], or for a rank this endpoint does not host.
    fn open(&self, rank: RankId) -> Box<dyn Mailbox>;

    /// Repoint `rank`'s slot at a fresh mailbox (restart), returning the new
    /// receiving end. Anything queued for the old incarnation is dropped.
    fn replace(&self, rank: RankId) -> Box<dyn Mailbox>;

    /// Tear down `rank`'s endpoint: subsequent sends to it are discarded
    /// until [`Transport::replace`] revives it.
    fn close(&self, rank: RankId);
}

/// A crossbeam receiver as a [`Mailbox`].
pub(crate) struct ChanMailbox(pub(crate) Receiver<Packet>);

impl Mailbox for ChanMailbox {
    fn try_recv(&self) -> Option<Packet> {
        self.0.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Packet, RecvTimeoutErr> {
        self.0.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvTimeoutErr::Timeout,
            RecvTimeoutError::Disconnected => RecvTimeoutErr::Disconnected,
        })
    }
}

/// A mailbox whose endpoint is already dead (test scaffolding).
#[cfg(test)]
pub(crate) fn dead_mailbox() -> Box<dyn Mailbox> {
    Box::new(ChanMailbox(unbounded().1))
}

/// The in-process transport: one unbounded crossbeam channel per rank.
///
/// This is the seed implementation the trait was extracted from — the slot
/// table is exactly the old `Router`'s, so every existing test and chaos
/// schedule behaves bit-identically through the seam. Channel semantics give
/// the contract for free: crossbeam preserves per-producer order, a dropped
/// `Receiver` fails sends, and swapping the `Sender` strands old traffic in
/// the old channel.
pub struct InProcTransport {
    slots: Vec<RwLock<Sender<Packet>>>,
    /// Initial receivers, handed out once by [`Transport::open`].
    pending: Vec<Mutex<Option<Receiver<Packet>>>>,
}

impl InProcTransport {
    /// A transport with `n` endpoints.
    pub fn new(n: usize) -> Self {
        let mut slots = Vec::with_capacity(n);
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            slots.push(RwLock::new(tx));
            pending.push(Mutex::new(Some(rx)));
        }
        InProcTransport { slots, pending }
    }
}

impl Transport for InProcTransport {
    fn ranks(&self) -> usize {
        self.slots.len()
    }

    fn send(&self, dst: RankId, pkt: Packet) -> bool {
        let Some(slot) = self.slots.get(dst.idx()) else {
            return false;
        };
        slot.read().send(pkt).is_ok()
    }

    fn open(&self, rank: RankId) -> Box<dyn Mailbox> {
        let rx = self.pending[rank.idx()].lock().take().expect("endpoint already opened");
        Box::new(ChanMailbox(rx))
    }

    fn replace(&self, rank: RankId) -> Box<dyn Mailbox> {
        let (tx, rx) = unbounded();
        *self.slots[rank.idx()].write() = tx;
        Box::new(ChanMailbox(rx))
    }

    fn close(&self, rank: RankId) {
        // Point the slot at a channel whose receiver is already gone: the
        // endpoint reads as dead until `replace` revives it.
        let (tx, _rx) = unbounded();
        *self.slots[rank.idx()].write() = tx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::CtrlMsg;
    use bytes::Bytes;

    fn ctrl(kind: u16) -> Packet {
        Packet::Ctrl(CtrlMsg { from: RankId(0), kind, data: Bytes::new() })
    }

    #[test]
    fn open_twice_panics() {
        let t = InProcTransport::new(1);
        let _mb = t.open(RankId(0));
        assert!(
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.open(RankId(0)))).is_err()
        );
    }

    #[test]
    fn close_discards_until_replace() {
        let t = InProcTransport::new(2);
        let _mb = t.open(RankId(0));
        assert!(t.send(RankId(0), ctrl(1)));
        t.close(RankId(0));
        assert!(!t.send(RankId(0), ctrl(2)));
        let fresh = t.replace(RankId(0));
        assert!(t.send(RankId(0), ctrl(3)));
        match fresh.try_recv().unwrap() {
            Packet::Ctrl(c) => assert_eq!(c.kind, 3),
            _ => panic!("wrong packet"),
        }
    }

    #[test]
    fn recv_timeout_maps_disconnect() {
        let t = InProcTransport::new(1);
        let mb = t.open(RankId(0));
        assert_eq!(mb.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutErr::Timeout));
        let _fresh = t.replace(RankId(0));
        // The old mailbox's channel lost its only sender: disconnected.
        assert_eq!(mb.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutErr::Disconnected));
    }
}
