//! The Unix-domain-socket transport: packets as length-prefixed frames.
//!
//! Two shapes, one frame protocol ([`super::frame`]):
//!
//! * [`UdsTransport::loopback`] — every rank still a thread of this process,
//!   but **all** traffic serialized onto a socketpair and delivered by a hub
//!   thread. This is the wire path with none of the process management: the
//!   whole existing suite runs over it via `SPBC_TRANSPORT=uds`, proving the
//!   codec and framing under real workloads.
//! * [`UdsTransport::node`] — this process hosts a contiguous slice of the
//!   world (`spbc-node`); sends between hosted ranks short-circuit through
//!   crossbeam (the route per channel is fixed, so per-channel FIFO holds),
//!   everything else travels framed through the coordinator, which routes
//!   between nodes.
//!
//! Restart semantics mirror [`super::InProcTransport`]: a slot carries a
//! generation counter, a dropped mailbox marks its own generation dead
//! (sends then report the discard), and `replace` installs a fresh channel
//! under a bumped generation. In loopback mode the `Repoint` frame doubles
//! as the restart barrier — the hub processes it in stream order, so every
//! packet sent before the restart drains into the old, doomed mailbox.

use super::frame::{read_frame, write_frame, Frame, NodeEvent};
use super::{Mailbox, RecvTimeoutErr, Transport};
use crate::envelope::Packet;
use crate::error::{MpiError, Result};
use crate::types::RankId;
use crossbeam_channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::{Mutex, RwLock};
use std::io::BufReader;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

fn io_err(what: &str, e: std::io::Error) -> MpiError {
    MpiError::App(format!("uds transport: {what}: {e}"))
}

/// One rank's local delivery slot.
struct SlotState {
    tx: Sender<Packet>,
    /// Bumped on every `replace`; lets a stale mailbox's `Drop` recognise it
    /// no longer owns the slot.
    gen: u64,
    /// Set when the current incarnation's mailbox was dropped (the rank
    /// died): sends report the discard until `replace` revives the slot.
    dead: bool,
}

/// The delivery table for the ranks this endpoint hosts — all of them in
/// loopback mode, a contiguous `[base, base+len)` slice in node mode.
struct Slots {
    base: u32,
    states: Vec<RwLock<SlotState>>,
    /// Initial receivers, handed out once by `open`.
    pending: Vec<Mutex<Option<Receiver<Packet>>>>,
}

impl Slots {
    fn new(base: u32, count: usize) -> Self {
        let mut states = Vec::with_capacity(count);
        let mut pending = Vec::with_capacity(count);
        for _ in 0..count {
            let (tx, rx) = unbounded();
            states.push(RwLock::new(SlotState { tx, gen: 0, dead: false }));
            pending.push(Mutex::new(Some(rx)));
        }
        Slots { base, states, pending }
    }

    fn index(&self, rank: RankId) -> Option<usize> {
        let i = rank.0.checked_sub(self.base)? as usize;
        (i < self.states.len()).then_some(i)
    }

    /// Deliver into the slot; `false` when the rank is unknown here or dead.
    fn deliver(&self, rank: RankId, pkt: Packet) -> bool {
        let Some(i) = self.index(rank) else { return false };
        let st = self.states[i].read();
        !st.dead && st.tx.send(pkt).is_ok()
    }

    fn alive(&self, rank: RankId) -> bool {
        self.index(rank).is_some_and(|i| !self.states[i].read().dead)
    }

    /// Install a fresh channel under a bumped generation (restart).
    fn repoint(&self, rank: RankId) -> (Receiver<Packet>, u64) {
        let i = self.index(rank).expect("repoint of a rank this endpoint does not host");
        let (tx, rx) = unbounded();
        let mut st = self.states[i].write();
        st.tx = tx;
        st.gen += 1;
        st.dead = false;
        (rx, st.gen)
    }

    /// A mailbox of generation `gen` was dropped: mark the slot dead if that
    /// incarnation still owns it.
    fn mark_dead(&self, rank: RankId, gen: u64) {
        if let Some(i) = self.index(rank) {
            let mut st = self.states[i].write();
            if st.gen == gen {
                st.dead = true;
            }
        }
    }

    fn close(&self, rank: RankId) {
        if let Some(i) = self.index(rank) {
            let mut st = self.states[i].write();
            st.dead = true;
        }
    }

    fn take_pending(&self, rank: RankId) -> Receiver<Packet> {
        let i = self.index(rank).expect("open of a rank this endpoint does not host");
        self.pending[i].lock().take().expect("endpoint already opened")
    }

    fn gen_of(&self, rank: RankId) -> u64 {
        self.states[self.index(rank).unwrap()].read().gen
    }
}

/// A [`Mailbox`] whose `Drop` marks the slot dead, so senders observe the
/// rank's death even though delivery happens on another thread (or in
/// another process's hub).
struct UdsMailbox {
    rx: Receiver<Packet>,
    slots: Arc<Slots>,
    rank: RankId,
    gen: u64,
}

impl Mailbox for UdsMailbox {
    fn try_recv(&self) -> Option<Packet> {
        self.rx.try_recv().ok()
    }

    fn recv_timeout(&self, timeout: Duration) -> std::result::Result<Packet, RecvTimeoutErr> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => RecvTimeoutErr::Timeout,
            RecvTimeoutError::Disconnected => RecvTimeoutErr::Disconnected,
        })
    }
}

impl Drop for UdsMailbox {
    fn drop(&mut self) {
        self.slots.mark_dead(self.rank, self.gen);
    }
}

enum Mode {
    /// Single process; a hub thread drains the socketpair into the slots.
    Loopback {
        /// `replace` waits here for the hub to install the fresh channel.
        reply_rx: Mutex<Receiver<(Receiver<Packet>, u64)>>,
        hub: Mutex<Option<JoinHandle<()>>>,
    },
    /// One `spbc-node` process hosting a slice of the world.
    Node {
        /// Set by `Shutdown` from the coordinator — or by losing it.
        shutdown: Arc<AtomicBool>,
        reader: Mutex<Option<JoinHandle<()>>>,
    },
}

/// Packets over Unix-domain sockets; see the module docs.
pub struct UdsTransport {
    slots: Arc<Slots>,
    writer: Mutex<UnixStream>,
    world: usize,
    mode: Mode,
}

impl UdsTransport {
    /// A single-process wire fabric for `n` ranks: every packet rides the
    /// socketpair through the hub thread.
    pub fn loopback(n: usize) -> Result<Self> {
        let (client, server) = UnixStream::pair().map_err(|e| io_err("socketpair", e))?;
        let slots = Arc::new(Slots::new(0, n));
        let (reply_tx, reply_rx) = unbounded();
        let hub_slots = Arc::clone(&slots);
        let hub = std::thread::Builder::new()
            .name("uds-hub".into())
            .spawn(move || {
                let mut r = BufReader::new(server);
                loop {
                    match read_frame(&mut r) {
                        Ok(Some(Frame::Deliver { dst, pkt })) => {
                            hub_slots.deliver(dst, pkt);
                        }
                        Ok(Some(Frame::Repoint { rank })) => {
                            let _ = reply_tx.send(hub_slots.repoint(rank));
                        }
                        Ok(Some(Frame::Shutdown)) | Ok(None) | Err(_) => break,
                        Ok(Some(_)) => {}
                    }
                }
            })
            .map_err(|e| io_err("spawn hub", e))?;
        Ok(UdsTransport {
            slots,
            writer: Mutex::new(client),
            world: n,
            mode: Mode::Loopback { reply_rx: Mutex::new(reply_rx), hub: Mutex::new(Some(hub)) },
        })
    }

    /// The endpoint of one `spbc-node` process: connect to the coordinator
    /// at `socket`, announce ourselves as `node` in restart `epoch`, and
    /// host ranks `first_rank..first_rank + hosted` of a `world`-rank run.
    pub fn node(
        socket: &Path,
        node: u32,
        epoch: u32,
        first_rank: u32,
        hosted: usize,
        world: usize,
    ) -> Result<Self> {
        let stream = UnixStream::connect(socket).map_err(|e| io_err("connect", e))?;
        let mut writer = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
        write_frame(&mut writer, &Frame::Hello { node, epoch }).map_err(|e| io_err("hello", e))?;
        let slots = Arc::new(Slots::new(first_rank, hosted));
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_slots = Arc::clone(&slots);
        let reader_shutdown = Arc::clone(&shutdown);
        let reader = std::thread::Builder::new()
            .name(format!("uds-node-{node}"))
            .spawn(move || {
                let mut r = BufReader::new(stream);
                loop {
                    match read_frame(&mut r) {
                        Ok(Some(Frame::Deliver { dst, pkt })) => {
                            reader_slots.deliver(dst, pkt);
                        }
                        // Coordinator done — or gone. Either way the run is
                        // over for us; lingering ranks may exit.
                        Ok(Some(Frame::Shutdown)) | Ok(None) | Err(_) => {
                            reader_shutdown.store(true, Ordering::SeqCst);
                            break;
                        }
                        Ok(Some(_)) => {}
                    }
                }
            })
            .map_err(|e| io_err("spawn reader", e))?;
        Ok(UdsTransport {
            slots,
            writer: Mutex::new(writer),
            world,
            mode: Mode::Node { shutdown, reader: Mutex::new(Some(reader)) },
        })
    }

    /// Report a rank-lifecycle event to the coordinator (node mode only).
    pub fn send_event(&self, ev: NodeEvent) -> Result<()> {
        let mut w = self.writer.lock();
        write_frame(&mut *w, &Frame::Event(ev)).map_err(|e| io_err("event", e))
    }

    /// True once the coordinator broadcast `Shutdown` (or disappeared);
    /// lingering ranks should exit. Always `false` in loopback mode, where
    /// the runtime's own global-done flag governs lingering.
    pub fn shutdown_requested(&self) -> bool {
        match &self.mode {
            Mode::Node { shutdown, .. } => shutdown.load(Ordering::SeqCst),
            Mode::Loopback { .. } => false,
        }
    }

    /// True when this endpoint hosts `rank`'s mailbox locally.
    pub fn hosts(&self, rank: RankId) -> bool {
        self.slots.index(rank).is_some()
    }
}

impl Transport for UdsTransport {
    fn ranks(&self) -> usize {
        self.world
    }

    fn send(&self, dst: RankId, pkt: Packet) -> bool {
        if self.slots.index(dst).is_some() {
            match &self.mode {
                // Loopback: local knowledge of death, but delivery stays on
                // the wire so it serializes with the Repoint barrier.
                Mode::Loopback { .. } => {
                    if !self.slots.alive(dst) {
                        return false;
                    }
                    let mut w = self.writer.lock();
                    write_frame(&mut *w, &Frame::Deliver { dst, pkt }).is_ok()
                }
                // Node: hosted destination, short-circuit through crossbeam.
                Mode::Node { .. } => self.slots.deliver(dst, pkt),
            }
        } else if dst.idx() < self.world {
            // Remote rank: frame it to the coordinator. The discard decision
            // for a dead remote rank happens at the far end, as on a wire.
            let mut w = self.writer.lock();
            write_frame(&mut *w, &Frame::Deliver { dst, pkt }).is_ok()
        } else {
            false
        }
    }

    fn open(&self, rank: RankId) -> Box<dyn Mailbox> {
        let rx = self.slots.take_pending(rank);
        let gen = self.slots.gen_of(rank);
        Box::new(UdsMailbox { rx, slots: Arc::clone(&self.slots), rank, gen })
    }

    fn replace(&self, rank: RankId) -> Box<dyn Mailbox> {
        let (rx, gen) = match &self.mode {
            Mode::Loopback { reply_rx, .. } => {
                // Hold the writer lock across the round trip: the Repoint is
                // ordered after every prior Deliver (the restart barrier),
                // and concurrent replaces cannot cross-match replies.
                let mut w = self.writer.lock();
                write_frame(&mut *w, &Frame::Repoint { rank })
                    .expect("uds hub vanished during replace");
                reply_rx.lock().recv().expect("uds hub vanished during replace")
            }
            Mode::Node { .. } => self.slots.repoint(rank),
        };
        Box::new(UdsMailbox { rx, slots: Arc::clone(&self.slots), rank, gen })
    }

    fn close(&self, rank: RankId) {
        self.slots.close(rank);
    }
}

impl Drop for UdsTransport {
    fn drop(&mut self) {
        // Unblock and reap the background thread. Loopback: tell the hub to
        // stop. Node: sever the socket so a reader blocked on the (possibly
        // still healthy) coordinator wakes with EOF.
        match &self.mode {
            Mode::Loopback { hub, .. } => {
                let _ = write_frame(&mut *self.writer.lock(), &Frame::Shutdown);
                if let Some(h) = hub.lock().take() {
                    let _ = h.join();
                }
            }
            Mode::Node { reader, .. } => {
                let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
                if let Some(h) = reader.lock().take() {
                    let _ = h.join();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::envelope::CtrlMsg;
    use bytes::Bytes;

    fn ctrl(kind: u16) -> Packet {
        Packet::Ctrl(CtrlMsg { from: RankId(0), kind, data: Bytes::new() })
    }

    fn kind_of(p: Packet) -> u16 {
        match p {
            Packet::Ctrl(c) => c.kind,
            _ => panic!("expected ctrl"),
        }
    }

    #[test]
    fn loopback_delivers_through_hub() {
        let t = UdsTransport::loopback(2).unwrap();
        let mb = t.open(RankId(1));
        assert!(t.send(RankId(1), ctrl(7)));
        let pkt = mb.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(kind_of(pkt), 7);
    }

    #[test]
    fn repoint_is_a_barrier() {
        let t = UdsTransport::loopback(1).unwrap();
        let old = t.open(RankId(0));
        assert!(t.send(RankId(0), ctrl(1)));
        let fresh = t.replace(RankId(0));
        assert!(t.send(RankId(0), ctrl(2)));
        // Pre-replace traffic drained into the old incarnation...
        assert_eq!(kind_of(old.recv_timeout(Duration::from_secs(5)).unwrap()), 1);
        // ...which then reads as disconnected (its sender was swapped out).
        assert_eq!(old.recv_timeout(Duration::from_millis(50)), Err(RecvTimeoutErr::Disconnected));
        // Post-replace traffic lands in the fresh mailbox only.
        assert_eq!(kind_of(fresh.recv_timeout(Duration::from_secs(5)).unwrap()), 2);
    }

    #[test]
    fn dropped_mailbox_fails_sends_until_replace() {
        let t = UdsTransport::loopback(1).unwrap();
        let mb = t.open(RankId(0));
        drop(mb);
        assert!(!t.send(RankId(0), ctrl(1)));
        let fresh = t.replace(RankId(0));
        assert!(t.send(RankId(0), ctrl(2)));
        assert_eq!(kind_of(fresh.recv_timeout(Duration::from_secs(5)).unwrap()), 2);
    }

    #[test]
    fn stale_mailbox_drop_does_not_kill_new_incarnation() {
        let t = UdsTransport::loopback(1).unwrap();
        let old = t.open(RankId(0));
        let _fresh = t.replace(RankId(0));
        drop(old); // generation mismatch: must not mark the slot dead
        assert!(t.send(RankId(0), ctrl(1)));
    }

    #[test]
    fn out_of_range_send_discarded() {
        let t = UdsTransport::loopback(1).unwrap();
        let _mb = t.open(RankId(0));
        assert!(!t.send(RankId(9), ctrl(1)));
    }
}
