//! A minimal Fx-style hasher for small fixed-width keys on hot paths.
//!
//! The matching engine hashes a `(CommId, RankId, Tag)` key on every send,
//! receive and arrival; with the standard library's SipHash that single hash
//! costs more than the rest of an indexed match combined and erases the
//! index's win at small queue depths. Channel keys are program-controlled
//! (communicator ids, ranks, tags), not attacker-controlled, so a fast
//! non-cryptographic mix is appropriate.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor word hasher (the `rustc-hash` recipe): fold each input word
/// with a rotate, xor and odd-constant multiply.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's 2^64 / golden-ratio constant; any odd multiplier with well-mixed
/// high bits works.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn distinct_keys_hash_differently() {
        let b = FxBuildHasher::default();
        let hashes: Vec<u64> = (0u64..1000).map(|i| b.hash_one((i, i as u32, 7u32))).collect();
        let mut dedup = hashes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), hashes.len());
    }

    #[test]
    fn equal_keys_hash_equal() {
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one((3u64, 4u32)), b.hash_one((3u64, 4u32)));
    }

    #[test]
    fn byte_stream_matches_word_stream_padding() {
        // write() must consume trailing partial words deterministically.
        let mut h1 = FxHasher::default();
        h1.write(&[1, 2, 3]);
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3]);
        assert_eq!(h1.finish(), h2.finish());
    }
}
