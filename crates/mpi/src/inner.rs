//! Rank internals and the progress engine.
//!
//! `RankInner` owns everything a rank needs to communicate: its mailbox, the
//! router, sequence counters, the matching engine and the request table. The
//! free functions in this module (`poll_all`, `block_until`, `handle_packet`)
//! form the progress engine; they take the inner state and the
//! fault-tolerance layer as two separate borrows so hooks can re-enter the
//! transmit path.

use crate::config::RuntimeConfig;
use crate::envelope::{Envelope, Message, Packet, Transfer};
use crate::error::{MpiError, Result};
use crate::failure::FailureShared;
use crate::ft::{ArrivalAction, FtCtx, FtLayer};
use crate::matching::{Arrived, ArrivedBody, MatchEngine};
use crate::recorder::{Disposition, Event, Recorder};
use crate::request::{RecvSpec, ReqState, RequestId, RequestTable, Status};
use crate::router::Router;
use crate::stats::RankStats;
use crate::transport::{Mailbox, RecvTimeoutErr};
use crate::types::{CommId, MatchIdent, RankId, Tag};
use crate::util::XorShift64;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A communicator as known by one member rank.
#[derive(Clone, Debug)]
pub struct CommInfo {
    /// Context id.
    pub id: CommId,
    /// Members as world ranks, ordered by communicator rank.
    pub members: Vec<RankId>,
    /// This rank's position (communicator rank).
    pub my_pos: usize,
    /// How many `comm_split`s have been performed on this communicator
    /// (feeds deterministic child-id derivation).
    pub split_seq: u64,
    /// How many collective operations have run on this communicator
    /// (feeds the collective tag).
    pub coll_seq: u64,
}

impl CommInfo {
    /// Translate a communicator rank to a world rank.
    pub fn world_rank(&self, pos: usize) -> Result<RankId> {
        self.members
            .get(pos)
            .copied()
            .ok_or_else(|| MpiError::invalid(format!("comm rank {pos} out of range")))
    }

    /// Translate a world rank to a communicator rank.
    pub fn pos_of(&self, world: RankId) -> Option<usize> {
        self.members.iter().position(|&r| r == world)
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// A sender-side rendezvous transfer awaiting CTS.
pub(crate) struct PendingRdv {
    pub(crate) env: Envelope,
    pub(crate) payload: Bytes,
    /// Local request to complete when the payload ships; `None` for
    /// fire-and-forget protocol transfers (log replay).
    pub(crate) req: Option<RequestId>,
}

/// Everything one rank owns.
pub struct RankInner {
    /// World id of this rank.
    pub me: RankId,
    /// Number of application ranks.
    pub world: usize,
    /// Runtime configuration.
    pub cfg: Arc<RuntimeConfig>,
    /// Restart epoch (0 = first execution).
    pub epoch: u32,
    pub(crate) mailbox: Box<dyn Mailbox>,
    pub(crate) router: Arc<Router>,
    /// Last sequence number sent per outgoing channel `(dst, comm)`.
    pub(crate) send_seq: HashMap<(RankId, CommId), u64>,
    /// Last envelope sequence number seen per incoming channel `(src, comm)`.
    pub(crate) recv_seen: HashMap<(RankId, CommId), u64>,
    pub(crate) engine: MatchEngine,
    pub(crate) reqs: RequestTable,
    pub(crate) pending_rdv: HashMap<u64, PendingRdv>,
    next_token: u64,
    pub(crate) comms: HashMap<CommId, CommInfo>,
    pub(crate) kill: Arc<AtomicBool>,
    pub(crate) global_done: Arc<AtomicBool>,
    /// Communication statistics.
    pub stats: RankStats,
    /// Identifier stamped on sends and receive requests (pattern API).
    pub(crate) cur_ident: MatchIdent,
    pub(crate) failure: Arc<FailureShared>,
    pub(crate) failure_points: u64,
    /// Lamport clock: incremented per send, advanced by arrivals.
    pub(crate) lamport: u64,
    perturb_rng: Option<XorShift64>,
    /// Flight-recorder handle (disabled unless the runtime enabled it).
    pub recorder: Recorder,
}

impl RankInner {
    /// Assemble the state for one rank thread.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        me: RankId,
        cfg: Arc<RuntimeConfig>,
        epoch: u32,
        mailbox: Box<dyn Mailbox>,
        router: Arc<Router>,
        kill: Arc<AtomicBool>,
        global_done: Arc<AtomicBool>,
        failure: Arc<FailureShared>,
    ) -> Self {
        let world = cfg.world_size;
        let mut comms = HashMap::new();
        if me.idx() < world {
            // Application ranks belong to the world communicator; service
            // ranks communicate via control messages only.
            comms.insert(
                crate::types::COMM_WORLD,
                CommInfo {
                    id: crate::types::COMM_WORLD,
                    members: (0..world as u32).map(RankId).collect(),
                    my_pos: me.idx(),
                    split_seq: 0,
                    coll_seq: 0,
                },
            );
        }
        let perturb_rng = cfg.perturb.as_ref().map(|p| {
            XorShift64::new(p.seed ^ (me.0 as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ epoch as u64)
        });
        RankInner {
            me,
            world,
            cfg,
            epoch,
            mailbox,
            router,
            send_seq: HashMap::new(),
            recv_seen: HashMap::new(),
            engine: MatchEngine::new(),
            reqs: RequestTable::new(),
            pending_rdv: HashMap::new(),
            next_token: 1,
            comms,
            kill,
            global_done,
            stats: RankStats::new(me, world),
            cur_ident: MatchIdent::DEFAULT,
            failure,
            failure_points: 0,
            lamport: 0,
            perturb_rng,
            recorder: Recorder::disabled(),
        }
    }

    /// Look up a communicator.
    pub(crate) fn comm(&self, id: CommId) -> Result<&CommInfo> {
        self.comms.get(&id).ok_or_else(|| MpiError::invalid(format!("unknown communicator {id:?}")))
    }

    /// Check the kill flag (crash injection / cluster rollback).
    #[inline]
    pub(crate) fn check_killed(&self) -> Result<()> {
        if self.kill.load(Ordering::Relaxed) {
            Err(MpiError::Killed)
        } else {
            Ok(())
        }
    }

    /// Allocate the next sequence number on channel `(dst, comm)`.
    pub(crate) fn next_seq(&mut self, dst: RankId, comm: CommId) -> u64 {
        let c = self.send_seq.entry((dst, comm)).or_insert(0);
        *c += 1;
        *c
    }

    /// Build the envelope for a fresh application send.
    pub(crate) fn next_env(
        &mut self,
        dst: RankId,
        comm: CommId,
        tag: Tag,
        plen: usize,
    ) -> Envelope {
        let seqnum = self.next_seq(dst, comm);
        self.lamport += 1;
        Envelope {
            src: self.me,
            dst,
            comm,
            tag,
            seqnum,
            plen: plen as u64,
            lamport: self.lamport,
            ident: self.cur_ident,
        }
    }

    /// Inject the configured perturbation delay (determinism testing).
    fn maybe_perturb(&mut self) {
        let Some(p) = self.cfg.perturb.clone() else { return };
        let Some(rng) = self.perturb_rng.as_mut() else { return };
        if rng.unit_f64() < p.probability && p.max_delay_us > 0 {
            let us = rng.below(p.max_delay_us.max(1));
            std::thread::sleep(Duration::from_micros(us));
        }
    }

    /// Push a raw packet to `dst`'s mailbox.
    pub(crate) fn transmit_packet(&self, dst: RankId, pkt: Packet) {
        self.router.send(dst, pkt);
    }

    /// Transmit an application message, choosing eager or rendezvous by size.
    ///
    /// Returns `Some(token)` for rendezvous transfers (completion is async),
    /// `None` when the message shipped eagerly. `req` (if any) is completed
    /// immediately for eager sends, or when CTS arrives for rendezvous.
    pub(crate) fn transmit_message(
        &mut self,
        env: Envelope,
        payload: Bytes,
        req: Option<RequestId>,
    ) -> Option<u64> {
        self.transmit_message_opts(env, payload, req, false)
    }

    /// Like [`RankInner::transmit_message`] with an optional rendezvous
    /// override: `force_rdv` ships even small payloads via RTS/CTS/Data, so
    /// the sender learns when the receiver *matched* the message (a delivery
    /// receipt — HydEE's coordinated replay needs one).
    pub(crate) fn transmit_message_opts(
        &mut self,
        env: Envelope,
        payload: Bytes,
        req: Option<RequestId>,
        force_rdv: bool,
    ) -> Option<u64> {
        self.maybe_perturb();
        if !force_rdv && payload.len() <= self.cfg.eager_threshold {
            self.transmit_packet(env.dst, Packet::Msg(Transfer::Eager(Message { env, payload })));
            if let Some(r) = req {
                let st = Status::send_done(env.dst, env.tag, env.plen as usize);
                self.reqs.complete(r, st, None).expect("send request valid");
            }
            None
        } else {
            let token = self.next_token;
            self.next_token += 1;
            self.pending_rdv.insert(token, PendingRdv { env, payload, req });
            self.transmit_packet(env.dst, Packet::Msg(Transfer::Rts { env, token }));
            Some(token)
        }
    }

    /// Receiver-side cleanup when peer `peer` has been restarted: every
    /// pending rendezvous announced by its dead incarnation will never
    /// complete (the CTS token dangles). Unexpected RTS entries from `peer`
    /// are dropped; matched-awaiting-data requests are re-armed at their
    /// original matching priority. Returns the affected envelopes — the
    /// protocol asks the restarted peer to replay exactly these payloads.
    pub(crate) fn purge_rdv_from_peer(&mut self, peer: RankId) -> Vec<Envelope> {
        let mut purged = self.engine.purge_rts_from(peer);
        let mut rearm: Vec<(RequestId, Envelope, RecvSpec)> = Vec::new();
        for (id, st) in self.reqs.iter_mut() {
            if let ReqState::RecvMatched { env, spec } = st {
                if env.src == peer {
                    rearm.push((id, *env, *spec));
                }
            }
        }
        for (id, env, spec) in rearm {
            *self.reqs.get_mut(id).expect("request exists") = ReqState::RecvPosted { spec };
            self.engine.post_front(id, spec);
            purged.push(env);
        }
        purged
    }

    /// Sender-side cleanup when peer `peer` has been restarted: rendezvous
    /// transfers towards it will never be CTSed by the dead incarnation.
    /// Application send requests complete (their payload is in the protocol
    /// log and will be replayed); fire-and-forget replay transfers are
    /// dropped and their tokens returned so the replay window can shrink.
    pub(crate) fn cancel_pending_rdv_to(&mut self, peer: RankId) -> Vec<u64> {
        let keys: Vec<u64> =
            self.pending_rdv.iter().filter(|(_, p)| p.env.dst == peer).map(|(&k, _)| k).collect();
        let mut replay_tokens = Vec::new();
        for k in keys {
            let p = self.pending_rdv.remove(&k).expect("key present");
            match p.req {
                Some(r) => {
                    let st = Status::send_done(p.env.dst, p.env.tag, p.env.plen as usize);
                    self.reqs.complete(r, st, None).expect("send request valid");
                }
                None => replay_tokens.push(k),
            }
        }
        replay_tokens
    }

    /// One-line diagnostic snapshot for deadlock reports: what is posted,
    /// what arrived unmatched, and the per-channel positions.
    pub(crate) fn debug_snapshot(&self) -> String {
        let posted: Vec<String> = self
            .engine
            .posted_iter()
            .map(|(id, spec)| {
                format!("{id:?}:{:?}/{:?}t{:?}i{:?}", spec.src, spec.comm, spec.tag, spec.ident)
            })
            .collect();
        let unexpected: Vec<String> = self
            .engine
            .unexpected_iter()
            .map(|a| {
                format!(
                    "{}->{} t{} s{} i{:?}{}",
                    a.env.src,
                    a.env.dst,
                    a.env.tag,
                    a.env.seqnum,
                    a.env.ident,
                    if a.is_pending_rts() { " (rts)" } else { "" }
                )
            })
            .collect();
        let mut seen: Vec<String> = self
            .recv_seen
            .iter()
            .map(|(&(src, comm), &s)| format!("{src}/{comm:?}<={s}"))
            .collect();
        seen.sort();
        let mut sent: Vec<String> =
            self.send_seq.iter().map(|(&(dst, comm), &s)| format!("{dst}/{comm:?}=>{s}")).collect();
        sent.sort();
        format!(
            "posted=[{}] unexpected=[{}] recv_seen=[{}] send_seq=[{}] live_reqs={} pending_rdv={}",
            posted.join(", "),
            unexpected.join(", "),
            seen.join(", "),
            sent.join(", "),
            self.reqs.live(),
            self.pending_rdv.len()
        )
    }

    /// Send a control message (never perturbed, not in statistics).
    pub(crate) fn send_ctrl(&self, to: RankId, kind: u16, data: Vec<u8>) {
        self.recorder.record(|| Event::CtrlSent { to, kind });
        self.transmit_packet(
            to,
            Packet::Ctrl(crate::envelope::CtrlMsg { from: self.me, kind, data: Bytes::from(data) }),
        );
    }
}

/// Process every packet currently available without blocking.
/// Returns how many packets were handled.
pub(crate) fn poll_all(inner: &mut RankInner, ft: &mut dyn FtLayer) -> Result<usize> {
    let mut n = 0;
    loop {
        match inner.mailbox.try_recv() {
            Some(pkt) => {
                handle_packet(inner, ft, pkt)?;
                n += 1;
            }
            None => return Ok(n),
        }
    }
}

/// Block until `cond` holds, driving progress. `what` names the operation for
/// deadlock reports. Communication time is accounted to the rank's stats.
pub(crate) fn block_until(
    inner: &mut RankInner,
    ft: &mut dyn FtLayer,
    mut cond: impl FnMut(&mut RankInner) -> Result<bool>,
    what: &str,
) -> Result<()> {
    let start = Instant::now();
    // While waiting, periodically publish the wait state to the flight
    // recorder so a watchdog dump shows every stuck rank's current
    // watermarks, not just the first rank to time out.
    let mut next_status = Duration::from_secs(1);
    let result = loop {
        poll_all(inner, ft)?;
        match cond(inner) {
            Ok(true) => break Ok(()),
            Ok(false) => {}
            Err(e) => break Err(e),
        }
        if let Err(e) = inner.check_killed() {
            break Err(e);
        }
        match inner.mailbox.recv_timeout(inner.cfg.poll_interval) {
            Ok(pkt) => {
                if let Err(e) = handle_packet(inner, ft, pkt) {
                    break Err(e);
                }
            }
            Err(RecvTimeoutErr::Timeout) => {
                let waited = start.elapsed();
                if inner.recorder.is_enabled() && waited >= next_status {
                    next_status = waited + Duration::from_secs(1);
                    let line = format!("waiting in {what}: {}", inner.debug_snapshot());
                    inner.recorder.set_status(|| line);
                }
                if waited > inner.cfg.deadlock_timeout {
                    inner.recorder.record(|| Event::Stall { what: what.to_string() });
                    let line = format!("stuck in {what}: {}", inner.debug_snapshot());
                    inner.recorder.set_status(|| line);
                    break Err(MpiError::DeadlockSuspected(format!(
                        "rank {} stuck in {what} for {:?}; {}",
                        inner.me,
                        inner.cfg.deadlock_timeout,
                        inner.debug_snapshot()
                    )));
                }
            }
            Err(RecvTimeoutErr::Disconnected) => {
                // Our mailbox was replaced: we are being restarted.
                break Err(MpiError::Killed);
            }
        }
    };
    inner.stats.comm_time += start.elapsed();
    result
}

/// Dispatch one packet.
pub(crate) fn handle_packet(
    inner: &mut RankInner,
    ft: &mut dyn FtLayer,
    pkt: Packet,
) -> Result<()> {
    match pkt {
        Packet::Msg(Transfer::Eager(msg)) => {
            arrival(inner, ft, msg.env, ArrivedBody::Eager(msg.payload))
        }
        Packet::Msg(Transfer::Rts { env, token }) => {
            arrival(inner, ft, env, ArrivedBody::Rts { token })
        }
        Packet::Msg(Transfer::Cts { token, recv_req, dst }) => {
            let Some(p) = inner.pending_rdv.remove(&token) else {
                // Stale CTS from before a rollback; the transfer no longer
                // exists. Safe to ignore: the replay path regenerates data.
                return Ok(());
            };
            if recv_req != crate::envelope::DISCARD_REQ {
                inner.transmit_packet(
                    dst,
                    Packet::Msg(Transfer::Data { env: p.env, recv_req, payload: p.payload }),
                );
            }
            match p.req {
                Some(r) => {
                    let st = Status::send_done(p.env.dst, p.env.tag, p.env.plen as usize);
                    inner.reqs.complete(r, st, None)?;
                }
                None => {
                    let mut ctx = FtCtx { inner };
                    ft.on_transfer_complete(&mut ctx, token)?;
                }
            }
            Ok(())
        }
        Packet::Msg(Transfer::Data { env, recv_req, payload }) => {
            // Deliver only to the request that CTSed this exact envelope. A
            // crash can leave a stale Data in flight: the dead incarnation
            // CTSed with a request id that means something else entirely in
            // the new incarnation (ids restart at zero). The recovery
            // machinery re-delivers the payload through replay, so stale
            // data is safe to drop.
            let id = RequestId(recv_req);
            let fresh = matches!(
                inner.reqs.get(id),
                Ok(ReqState::RecvMatched { env: matched, .. }) if *matched == env
            );
            if !fresh {
                return Ok(());
            }
            inner.stats.on_recv(env.src, payload.len());
            inner.reqs.deliver_data(id, Message { env, payload })
        }
        Packet::Ctrl(c) => {
            inner.recorder.record(|| Event::CtrlRecv { from: c.from, kind: c.kind });
            let mut ctx = FtCtx { inner };
            ft.on_ctrl(&mut ctx, c)
        }
    }
}

/// Handle an arriving envelope (eager payload or RTS placeholder).
fn arrival(
    inner: &mut RankInner,
    ft: &mut dyn FtLayer,
    env: Envelope,
    body: ArrivedBody,
) -> Result<()> {
    {
        let mut ctx = FtCtx { inner };
        if ft.on_arrival(&mut ctx, &env) == ArrivalAction::Drop {
            inner.recorder.record(|| Event::Arrival {
                src: env.src,
                comm: env.comm.0,
                tag: env.tag,
                seqnum: env.seqnum,
                disposition: Disposition::Dropped,
            });
            if let ArrivedBody::Rts { token } = body {
                // A duplicate announcement of a payload we still lack means
                // the sender invalidated the transfer it announced first: it
                // cancels outbound rendezvous when it learns of our restart,
                // then re-sends the payload from its log. When the first
                // announcement reached *this* incarnation too, its token now
                // dangles at the sender — adopt the fresh one and discard
                // the stale one, else the later CTS pulls against a dead
                // token and the receive never completes.
                if let Some(stale) = inner.engine.rebind_rts(&env, token) {
                    inner.transmit_packet(
                        env.src,
                        Packet::Msg(Transfer::Cts {
                            token: stale,
                            recv_req: crate::envelope::DISCARD_REQ,
                            dst: inner.me,
                        }),
                    );
                    return Ok(());
                }
                // Same race, one step later: the stale announcement was
                // already matched and CTSed. Re-CTS with the live token; if
                // the old transfer was in fact still valid, the second Data
                // copy fails the request-state freshness check and is
                // dropped.
                let rearmed = inner.reqs.iter_mut().find_map(|(id, st)| match st {
                    ReqState::RecvMatched { env: m, .. }
                        if m.src == env.src && m.comm == env.comm && m.seqnum == env.seqnum =>
                    {
                        Some(id)
                    }
                    _ => None,
                });
                if let Some(id) = rearmed {
                    inner.transmit_packet(
                        env.src,
                        Packet::Msg(Transfer::Cts { token, recv_req: id.0, dst: inner.me }),
                    );
                    return Ok(());
                }
                // Payload already consumed: a dropped announcement must
                // still be answered, or the (re-)sender would wait for a CTS
                // forever — tell it to discard the transfer.
                inner.transmit_packet(
                    env.src,
                    Packet::Msg(Transfer::Cts {
                        token,
                        recv_req: crate::envelope::DISCARD_REQ,
                        dst: inner.me,
                    }),
                );
            }
            return Ok(());
        }
    }
    // Envelope-arrival watermark (per-channel LR). Replayed back-fills of
    // older seqnums must not regress it.
    let w = inner.recv_seen.entry((env.src, env.comm)).or_insert(0);
    *w = (*w).max(env.seqnum);
    inner.lamport = inner.lamport.max(env.lamport) + 1;

    let admissible = |spec: &RecvSpec, e: &Envelope| ft.match_admissible(spec, e);
    if let Some(req) = inner.engine.match_arrival(&env, &admissible) {
        inner.recorder.record(|| Event::Arrival {
            src: env.src,
            comm: env.comm.0,
            tag: env.tag,
            seqnum: env.seqnum,
            disposition: Disposition::Matched,
        });
        complete_match(inner, req, env, body)
    } else {
        inner.recorder.record(|| Event::Arrival {
            src: env.src,
            comm: env.comm.0,
            tag: env.tag,
            seqnum: env.seqnum,
            disposition: Disposition::Unexpected,
        });
        inner.engine.push_unexpected(Arrived { env, body });
        Ok(())
    }
}

/// A request and an arrived envelope matched: deliver or CTS.
pub(crate) fn complete_match(
    inner: &mut RankInner,
    req: RequestId,
    env: Envelope,
    body: ArrivedBody,
) -> Result<()> {
    match body {
        ArrivedBody::Eager(payload) => {
            inner.stats.on_recv(env.src, payload.len());
            inner.reqs.complete(req, Status::of(&env), Some(payload))
        }
        ArrivedBody::Rts { token } => {
            let spec = match inner.reqs.get(req)? {
                ReqState::RecvPosted { spec } => *spec,
                other => {
                    return Err(MpiError::InvalidState(format!(
                        "rendezvous match against non-posted request: {other:?}"
                    )))
                }
            };
            *inner.reqs.get_mut(req)? = ReqState::RecvMatched { env, spec };
            inner.transmit_packet(
                env.src,
                Packet::Msg(Transfer::Cts { token, recv_req: req.0, dst: inner.me }),
            );
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ft::NoFt;
    use crate::transport::dead_mailbox;
    use crate::types::COMM_WORLD;
    use crossbeam_channel::unbounded;

    fn make_inner(me: u32, world: usize) -> (RankInner, Vec<Box<dyn Mailbox>>) {
        let cfg = Arc::new(RuntimeConfig::new(world));
        let (router, mut rxs) = Router::new(world);
        let mailbox = std::mem::replace(&mut rxs[me as usize], dead_mailbox());
        let (evt_tx, _evt_rx) = unbounded();
        let failure = Arc::new(FailureShared::new(world, evt_tx));
        let inner = RankInner::new(
            RankId(me),
            cfg,
            0,
            mailbox,
            Arc::new(router),
            Arc::new(AtomicBool::new(false)),
            Arc::new(AtomicBool::new(false)),
            failure,
        );
        (inner, rxs)
    }

    #[test]
    fn seqnums_are_per_channel() {
        let (mut inner, _rxs) = make_inner(0, 3);
        assert_eq!(inner.next_seq(RankId(1), COMM_WORLD), 1);
        assert_eq!(inner.next_seq(RankId(1), COMM_WORLD), 2);
        assert_eq!(inner.next_seq(RankId(2), COMM_WORLD), 1);
        assert_eq!(inner.next_seq(RankId(1), CommId(9)), 1);
    }

    #[test]
    fn eager_send_completes_immediately() {
        let (mut inner, rxs) = make_inner(0, 2);
        let env = inner.next_env(RankId(1), COMM_WORLD, 5, 3);
        let req = inner.reqs.insert(ReqState::SendPending { env });
        let tok = inner.transmit_message(env, Bytes::from_static(b"abc"), Some(req));
        assert!(tok.is_none());
        assert!(inner.reqs.is_done(req).unwrap());
        assert!(matches!(rxs[1].try_recv().unwrap(), Packet::Msg(Transfer::Eager(_))));
    }

    #[test]
    fn large_send_goes_rendezvous() {
        let (mut inner, rxs) = make_inner(0, 2);
        let big = vec![7u8; 64 * 1024];
        let env = inner.next_env(RankId(1), COMM_WORLD, 5, big.len());
        let tok = inner.transmit_message(env, Bytes::from(big), None);
        assert!(tok.is_some());
        assert!(matches!(rxs[1].try_recv().unwrap(), Packet::Msg(Transfer::Rts { .. })));
        assert_eq!(inner.pending_rdv.len(), 1);
    }

    #[test]
    fn arrival_matches_posted_recv() {
        let (mut inner, _rxs) = make_inner(1, 2);
        let mut ft = NoFt;
        let spec = RecvSpec {
            comm: COMM_WORLD,
            src: crate::types::Source::Any,
            tag: crate::types::TagSel::Tag(5),
            ident: MatchIdent::DEFAULT,
        };
        let req = inner.reqs.insert(ReqState::RecvPosted { spec });
        inner.engine.post(req, spec);
        let env = Envelope {
            src: RankId(0),
            dst: RankId(1),
            comm: COMM_WORLD,
            tag: 5,
            seqnum: 1,
            plen: 2,
            lamport: 1,
            ident: MatchIdent::DEFAULT,
        };
        handle_packet(
            &mut inner,
            &mut ft,
            Packet::Msg(Transfer::Eager(Message { env, payload: Bytes::from_static(b"hi") })),
        )
        .unwrap();
        let (st, payload) = inner.reqs.take_done(req).unwrap();
        assert_eq!(st.src, RankId(0));
        assert_eq!(payload.unwrap(), Bytes::from_static(b"hi"));
        assert_eq!(inner.recv_seen[&(RankId(0), COMM_WORLD)], 1);
    }

    #[test]
    fn unmatched_arrival_goes_unexpected() {
        let (mut inner, _rxs) = make_inner(1, 2);
        let mut ft = NoFt;
        let env = Envelope {
            src: RankId(0),
            dst: RankId(1),
            comm: COMM_WORLD,
            tag: 5,
            seqnum: 1,
            plen: 0,
            lamport: 1,
            ident: MatchIdent::DEFAULT,
        };
        handle_packet(
            &mut inner,
            &mut ft,
            Packet::Msg(Transfer::Eager(Message { env, payload: Bytes::new() })),
        )
        .unwrap();
        assert_eq!(inner.engine.unexpected_len(), 1);
    }

    #[test]
    fn stale_cts_ignored() {
        let (mut inner, _rxs) = make_inner(0, 2);
        let mut ft = NoFt;
        handle_packet(
            &mut inner,
            &mut ft,
            Packet::Msg(Transfer::Cts { token: 999, recv_req: 0, dst: RankId(1) }),
        )
        .unwrap();
    }

    /// FT stub that refuses every arrival, standing in for the duplicate
    /// filter of a recovery protocol.
    struct DropArrivals;
    impl FtLayer for DropArrivals {
        fn name(&self) -> &'static str {
            "drop-arrivals"
        }
        fn on_arrival(&mut self, _ctx: &mut FtCtx<'_>, _env: &Envelope) -> ArrivalAction {
            ArrivalAction::Drop
        }
    }

    fn rdv_env(plen: usize) -> Envelope {
        Envelope {
            src: RankId(0),
            dst: RankId(1),
            comm: COMM_WORLD,
            tag: 5,
            seqnum: 1,
            plen: plen as u64,
            lamport: 1,
            ident: MatchIdent::DEFAULT,
        }
    }

    #[test]
    fn dropped_duplicate_rts_rebinds_queued_token() {
        // The sender re-announced a payload whose first RTS is already
        // queued here: the first token is the one the sender cancelled, so
        // the queue entry must adopt the fresh token and the stale one be
        // CTS-discarded.
        let (mut inner, rxs) = make_inner(1, 2);
        let mut ft = DropArrivals;
        let env = rdv_env(4096);
        inner.engine.push_unexpected(Arrived { env, body: ArrivedBody::Rts { token: 7 } });
        handle_packet(&mut inner, &mut ft, Packet::Msg(Transfer::Rts { env, token: 8 })).unwrap();
        match rxs[0].try_recv().unwrap() {
            Packet::Msg(Transfer::Cts { token, recv_req, .. }) => {
                assert_eq!(token, 7);
                assert_eq!(recv_req, crate::envelope::DISCARD_REQ);
            }
            other => panic!("expected discard CTS, got {other:?}"),
        }
        let queued = inner.engine.unexpected_iter().next().unwrap();
        assert!(matches!(queued.body, ArrivedBody::Rts { token: 8 }));
    }

    #[test]
    fn dropped_duplicate_rts_recovers_matched_recv() {
        // One step later in the same race: the stale announcement was
        // already matched and CTSed. The duplicate must re-CTS with the
        // live token so the payload can still be pulled.
        let (mut inner, rxs) = make_inner(1, 2);
        let mut ft = DropArrivals;
        let env = rdv_env(4096);
        let spec = RecvSpec {
            comm: COMM_WORLD,
            src: crate::types::Source::Rank(RankId(0)),
            tag: crate::types::TagSel::Tag(5),
            ident: MatchIdent::DEFAULT,
        };
        let req = inner.reqs.insert(ReqState::RecvMatched { env, spec });
        handle_packet(&mut inner, &mut ft, Packet::Msg(Transfer::Rts { env, token: 9 })).unwrap();
        match rxs[0].try_recv().unwrap() {
            Packet::Msg(Transfer::Cts { token, recv_req, .. }) => {
                assert_eq!(token, 9);
                assert_eq!(recv_req, req.0);
            }
            other => panic!("expected re-CTS, got {other:?}"),
        }
        // The fresh Data completes the receive as usual.
        let payload = Bytes::from(vec![3u8; 4096]);
        handle_packet(
            &mut inner,
            &mut ft,
            Packet::Msg(Transfer::Data { env, recv_req: req.0, payload: payload.clone() }),
        )
        .unwrap();
        let (st, got) = inner.reqs.take_done(req).unwrap();
        assert_eq!(st.src, RankId(0));
        assert_eq!(got.unwrap(), payload);
    }

    #[test]
    fn dropped_rts_with_no_pending_state_is_discarded() {
        // Payload already consumed: the duplicate announcement is answered
        // with a discard CTS so the sender's transfer resolves.
        let (mut inner, rxs) = make_inner(1, 2);
        let mut ft = DropArrivals;
        handle_packet(
            &mut inner,
            &mut ft,
            Packet::Msg(Transfer::Rts { env: rdv_env(4096), token: 3 }),
        )
        .unwrap();
        match rxs[0].try_recv().unwrap() {
            Packet::Msg(Transfer::Cts { token, recv_req, .. }) => {
                assert_eq!(token, 3);
                assert_eq!(recv_req, crate::envelope::DISCARD_REQ);
            }
            other => panic!("expected discard CTS, got {other:?}"),
        }
    }

    #[test]
    fn kill_flag_aborts_block() {
        let (mut inner, _rxs) = make_inner(0, 2);
        let mut ft = NoFt;
        inner.kill.store(true, Ordering::SeqCst);
        let err = block_until(&mut inner, &mut ft, |_| Ok(false), "test").unwrap_err();
        assert!(err.is_killed());
    }

    #[test]
    fn deadlock_timeout_fires() {
        let (mut inner, _rxs) = make_inner(0, 2);
        let cfg = RuntimeConfig::new(2).with_deadlock_timeout(Duration::from_millis(30));
        inner.cfg = Arc::new(cfg);
        let mut ft = NoFt;
        let err = block_until(&mut inner, &mut ft, |_| Ok(false), "nothing").unwrap_err();
        assert!(matches!(err, MpiError::DeadlockSuspected(_)));
    }

    #[test]
    fn comm_info_translation() {
        let (inner, _rxs) = make_inner(1, 4);
        let w = inner.comm(COMM_WORLD).unwrap();
        assert_eq!(w.size(), 4);
        assert_eq!(w.world_rank(2).unwrap(), RankId(2));
        assert_eq!(w.pos_of(RankId(3)), Some(3));
        assert!(w.world_rank(9).is_err());
        assert!(inner.comm(CommId(42)).is_err());
    }
}
