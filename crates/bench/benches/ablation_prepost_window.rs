//! A1 ablation bench: recovery cost vs the §5.2.2 pre-post replay window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::failure::FailurePlan;
use mini_mpi::types::RankId;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;
const ITERS: u64 = 8;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_prepost_window");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let params = AppParams { iters: ITERS, elems: 512, compute: 1, seed: 7, sleep_us: 0 };
    for window in [1usize, 5, 50, 200] {
        g.bench_with_input(BenchmarkId::new("minighost", window), &window, |b, &window| {
            b.iter(|| {
                let provider = Arc::new(SpbcProvider::new(
                    ClusterMap::blocks(WORLD, 4),
                    SpbcConfig {
                        ckpt_interval: ITERS / 2,
                        replay_window: window,
                        ..Default::default()
                    },
                ));
                Runtime::builder(RuntimeConfig::new(WORLD))
                    .provider(provider)
                    .app(Workload::MiniGhost.build(params))
                    .plans(vec![FailurePlan::nth(RankId(4), ITERS)])
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap()
                    .wall_time
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
