//! Substrate microbenchmarks: wire codec, message log, point-to-point
//! round-trips — the per-message costs everything above is built on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::prelude::*;
use mini_mpi::wire::{from_bytes, to_bytes};
use spbc_core::log::{make_msg, MessageLog};
use std::sync::Arc;
use std::time::Duration;

fn wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire_codec");
    g.measurement_time(Duration::from_secs(4));
    let v: Vec<f64> = (0..1024).map(|i| i as f64).collect();
    g.throughput(Throughput::Bytes(8 * 1024));
    g.bench_function("encode_vec_f64_1k", |b| b.iter(|| to_bytes(&v)));
    let bytes = to_bytes(&v);
    g.bench_function("decode_vec_f64_1k", |b| b.iter(|| from_bytes::<Vec<f64>>(&bytes).unwrap()));
    g.finish();
}

fn log(c: &mut Criterion) {
    let mut g = c.benchmark_group("message_log");
    g.measurement_time(Duration::from_secs(4));
    g.bench_function("append_1k_msgs", |b| {
        b.iter(|| {
            let mut log = MessageLog::new();
            for s in 1..=1000u64 {
                log.append(make_msg(0, (s % 8) as u32 + 1, (s - 1) / 8 + 1, &[0u8; 64]));
            }
            log.total_bytes()
        })
    });
    let mut filled = MessageLog::new();
    for s in 1..=1000u64 {
        filled.append(make_msg(0, (s % 8) as u32 + 1, (s - 1) / 8 + 1, &[0u8; 64]));
    }
    g.bench_function("replay_set_from_1k", |b| {
        b.iter(|| filled.replay_set(mini_mpi::types::RankId(1), &|_| 0, &|_| Vec::new()))
    });
    g.finish();
}

/// Matching-engine scan cost vs queue depth: one arrival matched against a
/// posted queue of `depth` receives on distinct channels, where the target is
/// the deepest entry (worst case for a linear scan, average case for the
/// channel index). The matched request is immediately re-posted so the queue
/// depth stays constant across iterations. `wild` variants make every 16th
/// posted receive source-wildcard, exercising the indexed engine's wildcard
/// side-list alongside its exact buckets.
fn matching(c: &mut Criterion) {
    use mini_mpi::envelope::Envelope;
    use mini_mpi::matching::{reference::ReferenceMatchEngine, MatchEngine};
    use mini_mpi::request::{RecvSpec, RequestId};
    use mini_mpi::types::{CommId, MatchIdent, RankId, Source, TagSel};

    let check = |s: &RecvSpec, e: &Envelope| s.ident == e.ident;
    let spec_of = |tag: u32, wild: bool| RecvSpec {
        comm: CommId(0),
        src: if wild { Source::Any } else { Source::Rank(RankId(0)) },
        tag: TagSel::Tag(tag),
        ident: MatchIdent::new(0, 1),
    };
    let env_of = |tag: u32| Envelope {
        src: RankId(0),
        dst: RankId(1),
        comm: CommId(0),
        tag,
        seqnum: 1,
        plen: 0,
        lamport: 1,
        ident: MatchIdent::new(0, 1),
    };

    let mut g = c.benchmark_group("matching");
    g.measurement_time(Duration::from_secs(4));
    for &depth in &[16usize, 256, 4096] {
        for wildcards in [false, true] {
            let suffix = if wildcards { "wild" } else { "exact" };
            // The target tag (depth - 1) is never one of the wildcard slots
            // (multiples of 16), so both variants match an exact entry.
            let target_env = env_of(depth as u32 - 1);
            let target_spec = spec_of(depth as u32 - 1, false);

            g.bench_with_input(
                BenchmarkId::new(format!("indexed_{suffix}"), depth),
                &depth,
                |b, &depth| {
                    let mut eng = MatchEngine::new();
                    for i in 0..depth {
                        eng.post(RequestId(i as u64), spec_of(i as u32, wildcards && i % 16 == 0));
                    }
                    b.iter(|| {
                        let id = eng.match_arrival(&target_env, &check).unwrap();
                        eng.post(id, target_spec);
                        id
                    })
                },
            );
            g.bench_with_input(
                BenchmarkId::new(format!("linear_{suffix}"), depth),
                &depth,
                |b, &depth| {
                    let mut eng = ReferenceMatchEngine::new();
                    for i in 0..depth {
                        eng.post(RequestId(i as u64), spec_of(i as u32, wildcards && i % 16 == 0));
                    }
                    b.iter(|| {
                        let id = eng.match_arrival(&target_env, &check).unwrap();
                        eng.post(id, target_spec);
                        id
                    })
                },
            );
        }
    }
    g.finish();
}

/// Per-send bookkeeping cost in `RankStats::on_send`, payload digest on
/// (the default) vs off (`RuntimeConfig::with_payload_digests(false)`). The
/// FNV-1a digest is the only O(payload) term on the send path; with it off
/// the chains witness only `(tag, plen, ident)` order at O(1) per send.
fn stats(c: &mut Criterion) {
    use mini_mpi::stats::RankStats;
    use mini_mpi::types::{ChannelId, RankId};

    let mut g = c.benchmark_group("stats_on_send");
    g.measurement_time(Duration::from_secs(4));
    for &size in &[64usize, 4096, 64 * 1024] {
        let payload = vec![7u8; size];
        let chan = ChannelId::new(RankId(0), RankId(1), COMM_WORLD);
        g.throughput(Throughput::Bytes(size as u64));
        for digests in [true, false] {
            let name = if digests { "digest_on" } else { "digest_off" };
            g.bench_with_input(BenchmarkId::new(name, size), &size, |b, _| {
                let mut s = RankStats::new(RankId(0), 2);
                s.digest_payloads = digests;
                b.iter(|| s.on_send(chan, 1, std::hint::black_box(&payload), (0, 1)))
            });
        }
    }
    g.finish();
}

/// Cost of one `Recorder::record` call with the flight recorder enabled
/// (ring append under an uncontended mutex) vs disabled (the closure must
/// not even be evaluated).
fn flight_recorder(c: &mut Criterion) {
    use mini_mpi::recorder::{Event, FlightRecorder, Recorder};
    use mini_mpi::types::RankId;

    let event =
        || Event::Send { dst: RankId(1), comm: 0, tag: 1, seqnum: 1, bytes: 64, suppressed: false };
    let mut g = c.benchmark_group("flight_recorder");
    g.measurement_time(Duration::from_secs(4));
    let fr = FlightRecorder::new(1, 1024);
    let enabled = fr.handle(RankId(0));
    g.bench_function("record_enabled", |b| b.iter(|| enabled.record(event)));
    let disabled = Recorder::disabled();
    g.bench_function("record_disabled", |b| b.iter(|| disabled.record(event)));
    g.finish();
}

/// Commit-barrier cost of checkpoint storage: what a rank *waits on* per
/// wave. `sync_fsync` is the pre-ckptstore path — seal + write + fsync,
/// all on the barrier. `async_commit` is the double-buffered path's barrier
/// share — seal + enqueue on the background writer; the fsync happens on
/// the writer thread, overlapped with the next compute phase. `async_flush`
/// adds the next wave's flush with *no* compute in between — the degenerate
/// upper bound where there is nothing to hide the write behind.
fn ckptstore(c: &mut Criterion) {
    use mini_mpi::types::RankId;
    use spbc_ckptstore::{CkptStoreService, StoreConfig};
    use spbc_core::disk::DiskStore;
    use spbc_core::store::CheckpointData;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("spbc-bench-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    let mut g = c.benchmark_group("ckptstore_commit");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for &size in &[64 * 1024usize, 256 * 1024] {
        let ck = CheckpointData { ckpt_epoch: 1, app_state: vec![7u8; size], ..Default::default() };
        g.throughput(Throughput::Bytes(size as u64));

        g.bench_with_input(BenchmarkId::new("sync_fsync", size), &size, |b, _| {
            let disk = DiskStore::open(tmpdir(&format!("sync-{size}"))).unwrap();
            b.iter(|| disk.save(RankId(0), &ck).unwrap())
        });

        g.bench_with_input(BenchmarkId::new("async_commit", size), &size, |b, _| {
            let svc = CkptStoreService::on_disk(
                tmpdir(&format!("async-{size}")),
                1,
                StoreConfig::default(),
            )
            .unwrap();
            b.iter(|| svc.commit_local(RankId(0), 1, ck.to_blob(), None).unwrap());
            svc.flush_all().unwrap();
        });

        g.bench_with_input(BenchmarkId::new("async_flush", size), &size, |b, _| {
            let svc = CkptStoreService::on_disk(
                tmpdir(&format!("flush-{size}")),
                1,
                StoreConfig::default(),
            )
            .unwrap();
            b.iter(|| {
                svc.flush_rank(RankId(0)).unwrap();
                svc.commit_local(RankId(0), 1, ck.to_blob(), None).unwrap();
            });
            svc.flush_all().unwrap();
        });
    }
    g.finish();
}

/// Sealing-checksum throughput: the slice-by-8 CRC32 vs the bytewise loop
/// it replaced — the per-byte cost every sealed checkpoint blob pays on
/// both the write and the verify path.
fn crc(c: &mut Criterion) {
    use spbc_ckptstore::crc::{crc32, crc32_bytewise};

    let mut g = c.benchmark_group("crc");
    g.measurement_time(Duration::from_secs(4));
    for &size in &[4 * 1024usize, 256 * 1024] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 251) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("slice8", size), &size, |b, _| {
            b.iter(|| crc32(std::hint::black_box(&data)))
        });
        g.bench_with_input(BenchmarkId::new("bytewise", size), &size, |b, _| {
            b.iter(|| crc32_bytewise(std::hint::black_box(&data)))
        });
    }
    g.finish();
}

/// Per-wave cost of the V3 delta encoder vs the V2 full-blob path on a
/// 32-chunk (2 MiB) body: the small-dirty-fraction regime the format
/// targets, the all-dirty worst case (the encoder detects it and falls back
/// to a plain full blob, so it must track `full_v2_baseline`), and the
/// fulls-only cadence for reference. `spbc-ckpt` reports the corresponding
/// byte counts as `BENCH_ckpt.json`.
fn ckpt_delta(c: &mut Criterion) {
    use mini_mpi::types::RankId;
    use spbc_ckptstore::chunk::{DEFAULT_CHUNK_SIZE, DEFAULT_FULL_EVERY};
    use spbc_ckptstore::{CkptStoreService, StoreConfig};

    const CHUNKS: usize = 32;
    let size = CHUNKS * DEFAULT_CHUNK_SIZE;

    let mut g = c.benchmark_group("ckpt_delta");
    g.measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Bytes(size as u64));
    let mut scenario = |name: &str, full_every: u64, dirty_chunks: usize| {
        g.bench_function(name, |b| {
            let svc = CkptStoreService::in_memory(
                1,
                StoreConfig { full_every, ..StoreConfig::default() },
            );
            let mut body = vec![7u8; size];
            let mut epoch = 0u64;
            b.iter(|| {
                epoch += 1;
                for d in 0..dirty_chunks {
                    body[d * DEFAULT_CHUNK_SIZE] = (epoch % 251) as u8 + 1;
                }
                svc.encode_commit(RankId(0), epoch, &body).unwrap().1.physical
            })
        });
    };
    scenario("delta_1_of_32_dirty", DEFAULT_FULL_EVERY, 1);
    scenario("delta_all_dirty", DEFAULT_FULL_EVERY, CHUNKS);
    scenario("full_v2_baseline", 1, 1);
    g.finish();
}

fn p2p(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_roundtrip");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for &size in &[8usize, 4096, 64 * 1024] {
        g.bench_with_input(BenchmarkId::new("ping_pong", size), &size, |b, &size| {
            b.iter(|| {
                Runtime::run_native(2, move |rank| {
                    let payload = vec![1.0f64; size / 8];
                    for _ in 0..50 {
                        if rank.world_rank() == 0 {
                            rank.send(COMM_WORLD, 1, 1, &payload)?;
                            let _ = rank.recv::<f64>(COMM_WORLD, 1u32, 1)?;
                        } else {
                            let _ = rank.recv::<f64>(COMM_WORLD, 0u32, 1)?;
                            rank.send(COMM_WORLD, 0, 1, &payload)?;
                        }
                    }
                    Ok(vec![])
                })
                .unwrap()
                .ok()
                .unwrap()
                .wall_time
            })
        });
    }
    g.finish();
}

fn collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("allreduce_8_ranks", |b| {
        b.iter(|| {
            Runtime::run_native(8, |rank| {
                let x = [rank.world_rank() as f64; 16];
                for _ in 0..20 {
                    let _ = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &x)?;
                }
                Ok(vec![])
            })
            .unwrap()
            .ok()
            .unwrap()
            .wall_time
        })
    });
    g.finish();
}

fn spawn_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    g.bench_function("spawn_teardown_16_ranks", |b| {
        b.iter(|| {
            Runtime::builder(RuntimeConfig::new(16))
                .app(Arc::new(|_rank: &mut Rank| Ok(Vec::new())))
                .launch()
                .unwrap()
                .ok()
                .unwrap()
                .wall_time
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    wire,
    log,
    matching,
    stats,
    flight_recorder,
    ckptstore,
    crc,
    ckpt_delta,
    p2p,
    collectives,
    spawn_overhead
);
criterion_main!(benches);
