//! A2 ablation bench: the clustering tool's cost and objective comparison on
//! synthetic communication graphs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spbc_clustering::{partition, CommGraph, Objective, PartitionOpts};
use std::time::Duration;

/// A synthetic stencil-like communication graph over `n` ranks.
fn stencil_graph(n: usize) -> CommGraph {
    let mut g = CommGraph::empty(n);
    for r in 0..n {
        for d in [1usize, 2] {
            let peer = (r + d) % n;
            g.add(r, peer, 1000 / d as u64);
            g.add(peer, r, 1000 / d as u64);
        }
    }
    g
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_clustering");
    g.measurement_time(Duration::from_secs(5));
    for n in [64usize, 256, 512] {
        let graph = stencil_graph(n);
        let k = 16.min(n / 8); // never more clusters than nodes
        g.bench_with_input(BenchmarkId::new("min_total", n), &n, |b, _| {
            b.iter(|| {
                partition(
                    &graph,
                    k,
                    &PartitionOpts { node_size: 8, slack: 1, ..Default::default() },
                )
            })
        });
        g.bench_with_input(BenchmarkId::new("min_max", n), &n, |b, _| {
            b.iter(|| {
                partition(
                    &graph,
                    k,
                    &PartitionOpts {
                        node_size: 8,
                        slack: 1,
                        objective: Objective::MinMax,
                        ..Default::default()
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
