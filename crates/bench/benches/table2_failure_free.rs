//! Bench for Table 2: native execution vs SPBC (failure-free) — the logging
//! overhead, per workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;

fn params() -> AppParams {
    AppParams { iters: 6, elems: 256, compute: 1, seed: 7, sleep_us: 0 }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table2_failure_free");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for w in [Workload::Cm1, Workload::MiniGhost, Workload::Milc] {
        g.bench_with_input(BenchmarkId::new("native", w.name()), &w, |b, &w| {
            b.iter(|| {
                Runtime::builder(RuntimeConfig::new(WORLD))
                    .app(w.build(params()))
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap()
                    .wall_time
            })
        });
        g.bench_with_input(BenchmarkId::new("spbc", w.name()), &w, |b, &w| {
            b.iter(|| {
                let provider = Arc::new(SpbcProvider::new(
                    ClusterMap::blocks(WORLD, 4),
                    SpbcConfig::default(),
                ));
                Runtime::builder(RuntimeConfig::new(WORLD))
                    .provider(provider)
                    .app(w.build(params()))
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap()
                    .wall_time
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
