//! Bench for Table 1: execution under SPBC at increasing cluster counts.
//!
//! Criterion measures the protocol run's wall time per clustering; the
//! logged-volume numbers themselves come from the `spbc-table1` harness
//! binary (benches validate that logging cost stays flat as the cluster
//! count grows — the paper's failure-free claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;

fn params() -> AppParams {
    AppParams { iters: 6, elems: 256, compute: 1, seed: 7, sleep_us: 0 }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_log_growth");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for k in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::new("minighost_spbc", k), &k, |b, &k| {
            b.iter(|| {
                let provider = Arc::new(SpbcProvider::new(
                    ClusterMap::blocks(WORLD, k),
                    SpbcConfig::default(),
                ));
                let report = Runtime::builder(RuntimeConfig::new(WORLD))
                    .provider(provider)
                    .app(Workload::MiniGhost.build(params()))
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap();
                report.wall_time
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
