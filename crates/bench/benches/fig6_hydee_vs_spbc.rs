//! Bench for Figure 6: the same failure + recovery cycle under SPBC's
//! distributed replay vs HydEE's centrally coordinated replay (NAS LU).

use criterion::{criterion_group, criterion_main, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::failure::FailurePlan;
use mini_mpi::types::RankId;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_baselines::{coordinator_service, HydeeConfig, HydeeProvider};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;
const ITERS: u64 = 8;

fn params() -> AppParams {
    AppParams { iters: ITERS, elems: 256, compute: 1, seed: 7, sleep_us: 0 }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_hydee_vs_spbc");
    g.sample_size(10).measurement_time(Duration::from_secs(10));

    g.bench_function("lu_recover_spbc", |b| {
        b.iter(|| {
            let provider = Arc::new(SpbcProvider::new(
                ClusterMap::blocks(WORLD, 4),
                SpbcConfig { ckpt_interval: ITERS / 2, ..Default::default() },
            ));
            Runtime::builder(RuntimeConfig::new(WORLD))
                .provider(provider)
                .app(Workload::NasLu.build(params()))
                .plans(vec![FailurePlan::nth(RankId(4), ITERS)])
                .launch()
                .unwrap()
                .ok()
                .unwrap()
                .wall_time
        })
    });

    g.bench_function("lu_recover_hydee", |b| {
        b.iter(|| {
            let provider = Arc::new(HydeeProvider::new(
                ClusterMap::blocks(WORLD, 4),
                HydeeConfig { ckpt_interval: ITERS / 2, ..Default::default() },
            ));
            Runtime::builder(RuntimeConfig::new(WORLD).with_services(1))
                .provider(provider)
                .app(Workload::NasLu.build(params()))
                .plans(vec![FailurePlan::nth(RankId(4), ITERS)])
                .service(Arc::new(coordinator_service()))
                .launch()
                .unwrap()
                .ok()
                .unwrap()
                .wall_time
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
