//! Bench for Figure 5: a complete failure + recovery cycle under SPBC
//! (kill a cluster at the last iteration, restore, replay, finish) at
//! different cluster counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::failure::FailurePlan;
use mini_mpi::types::RankId;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;
const ITERS: u64 = 8;

fn params() -> AppParams {
    AppParams { iters: ITERS, elems: 256, compute: 1, seed: 7, sleep_us: 0 }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_recovery");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for k in [2usize, 4] {
        g.bench_with_input(BenchmarkId::new("minighost_recover", k), &k, |b, &k| {
            b.iter(|| {
                let provider = Arc::new(SpbcProvider::new(
                    ClusterMap::blocks(WORLD, k),
                    SpbcConfig { ckpt_interval: ITERS / 2, ..Default::default() },
                ));
                let report = Runtime::builder(RuntimeConfig::new(WORLD))
                    .provider(provider)
                    .app(Workload::MiniGhost.build(params()))
                    .plans(vec![FailurePlan::nth(RankId(4), ITERS)])
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap();
                assert_eq!(report.failures_handled, 1);
                report.wall_time
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
