//! A3 ablation bench: the cost of `(pattern_id, iteration_id)` matching.
//!
//! Two levels: a microbench of the matching engine itself (the per-message
//! cost SPBC adds to MPICH's matching), and a whole-run AMG comparison with
//! the identifier check on/off.

use criterion::{criterion_group, criterion_main, Criterion};
use mini_mpi::config::RuntimeConfig;
use mini_mpi::envelope::Envelope;
use mini_mpi::matching::{Arrived, ArrivedBody, MatchEngine};
use mini_mpi::request::{RecvSpec, RequestId};
use mini_mpi::types::{CommId, MatchIdent, RankId, Source, TagSel};
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

fn env(src: u32, tag: u32, seq: u64, ident: MatchIdent) -> Envelope {
    Envelope {
        src: RankId(src),
        dst: RankId(0),
        comm: CommId(0),
        tag,
        seqnum: seq,
        plen: 0,
        lamport: seq,
        ident,
    }
}

fn micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching_micro");
    g.measurement_time(Duration::from_secs(5));

    // 64 posted anonymous requests; match arrivals against them, with and
    // without the identifier predicate.
    let spec = |ident| RecvSpec { comm: CommId(0), src: Source::Any, tag: TagSel::Tag(1), ident };
    g.bench_function("match_arrival_base", |b| {
        b.iter(|| {
            let mut m = MatchEngine::new();
            for i in 0..64 {
                m.post(RequestId(i), spec(MatchIdent::DEFAULT));
            }
            for s in 0..64u64 {
                let e = env(1, 1, s + 1, MatchIdent::DEFAULT);
                let got = m.match_arrival(&e, &|_, _| true);
                assert!(got.is_some());
            }
        })
    });
    g.bench_function("match_arrival_with_ident_check", |b| {
        b.iter(|| {
            let mut m = MatchEngine::new();
            for i in 0..64 {
                m.post(RequestId(i), spec(MatchIdent::new(1, 1)));
            }
            for s in 0..64u64 {
                let e = env(1, 1, s + 1, MatchIdent::new(1, 1));
                let got = m.match_arrival(&e, &|sp, en| sp.ident == en.ident);
                assert!(got.is_some());
            }
        })
    });
    // Worst case: the ident veto forces a scan past mismatching requests.
    g.bench_function("match_arrival_ident_veto_scan", |b| {
        b.iter(|| {
            let mut m = MatchEngine::new();
            for i in 0..63 {
                m.post(RequestId(i), spec(MatchIdent::new(1, 1)));
            }
            m.post(RequestId(63), spec(MatchIdent::new(1, 2)));
            let e = env(1, 1, 1, MatchIdent::new(1, 2));
            let got = m.match_arrival(&e, &|sp, en| sp.ident == en.ident);
            assert_eq!(got, Some(RequestId(63)));
            // Drain so the next iteration starts clean.
            let _ = m.match_post(&spec(MatchIdent::new(1, 1)), &|_, _| true);
        })
    });
    g.bench_function("unexpected_queue_scan", |b| {
        b.iter(|| {
            let mut m = MatchEngine::new();
            for s in 0..64u64 {
                m.push_unexpected(Arrived {
                    env: env(1, 1, s + 1, MatchIdent::DEFAULT),
                    body: ArrivedBody::Eager(bytes::Bytes::new()),
                });
            }
            for _ in 0..64 {
                let got = m.match_post(&spec(MatchIdent::DEFAULT), &|_, _| true);
                assert!(got.is_some());
            }
        })
    });
    g.finish();
}

fn whole_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("amg_ident_overhead");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    let params = AppParams { iters: 4, elems: 256, compute: 1, seed: 7, sleep_us: 0 };
    for (name, enforce) in [("ident_off", false), ("ident_on", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let provider = Arc::new(SpbcProvider::new(
                    ClusterMap::blocks(6, 3),
                    SpbcConfig { enforce_ident: enforce, ..Default::default() },
                ));
                Runtime::builder(RuntimeConfig::new(6))
                    .provider(provider)
                    .app(Workload::Amg.build(params))
                    .launch()
                    .unwrap()
                    .ok()
                    .unwrap()
                    .wall_time
            })
        });
    }
    g.finish();
}

criterion_group!(benches, micro, whole_run);
criterion_main!(benches);
