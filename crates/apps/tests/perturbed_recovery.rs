//! Recovery under scheduling perturbation: SPBC's correctness argument rests
//! on channel-determinism, not on timing — so random delays injected into
//! every transmission must not affect the recovered result.

use mini_mpi::config::Perturb;
use mini_mpi::failure::FailurePlan;
use mini_mpi::prelude::*;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

fn cfg(seed: u64) -> RuntimeConfig {
    RuntimeConfig::new(6).with_deadlock_timeout(Duration::from_secs(60)).with_perturb(Perturb {
        max_delay_us: 800,
        probability: 0.4,
        seed,
    })
}

fn params() -> AppParams {
    AppParams { iters: 8, elems: 128, compute: 1, seed: 5, sleep_us: 0 }
}

fn check(w: Workload) {
    // Native reference without perturbation (results must not depend on
    // timing at all for these workloads).
    let native = Runtime::builder(RuntimeConfig::new(6))
        .app(w.build(params()))
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    for seed in [11u64, 22, 33] {
        let provider = Arc::new(SpbcProvider::new(
            ClusterMap::blocks(6, 3),
            SpbcConfig { ckpt_interval: 3, ..Default::default() },
        ));
        let report = Runtime::builder(cfg(seed))
            .provider(provider)
            .app(w.build(params()))
            .plans(vec![FailurePlan::nth(RankId(3), 6)])
            .launch()
            .unwrap()
            .ok()
            .unwrap();
        assert_eq!(report.failures_handled, 1, "{} seed {}", w.name(), seed);
        assert_eq!(
            native.outputs,
            report.outputs,
            "{} seed {}: perturbed recovery diverged",
            w.name(),
            seed
        );
    }
}

#[test]
fn perturbed_recovery_minighost() {
    check(Workload::MiniGhost);
}

#[test]
fn perturbed_recovery_minife_any_source() {
    check(Workload::MiniFe);
}

#[test]
fn perturbed_recovery_amg_iprobe() {
    check(Workload::Amg);
}

#[test]
fn perturbed_recovery_gtc() {
    check(Workload::Gtc);
}
