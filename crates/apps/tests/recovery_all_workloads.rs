//! The central correctness claim, checked for every workload: an execution
//! that loses a cluster mid-run and recovers through SPBC produces output
//! **bitwise identical** to the failure-free native execution.

use mini_mpi::failure::FailurePlan;
use mini_mpi::prelude::*;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;
const ITERS: u64 = 10;

fn params() -> AppParams {
    AppParams { iters: ITERS, elems: 256, compute: 1, seed: 21, sleep_us: 0 }
}

fn runtime_cfg() -> RuntimeConfig {
    RuntimeConfig::new(WORLD).with_deadlock_timeout(Duration::from_secs(60))
}

fn native_run(w: Workload) -> RunReport {
    Runtime::builder(runtime_cfg()).app(w.build(params())).launch().unwrap().ok().unwrap()
}

fn spbc_run(w: Workload, plans: Vec<FailurePlan>) -> RunReport {
    let provider = Arc::new(SpbcProvider::new(
        ClusterMap::blocks(WORLD, 4),
        SpbcConfig { ckpt_interval: 4, ..Default::default() },
    ));
    Runtime::builder(runtime_cfg())
        .provider(provider)
        .app(w.build(params()))
        .plans(plans)
        .launch()
        .unwrap()
        .ok()
        .unwrap()
}

fn check_workload(w: Workload) {
    let native = native_run(w);
    // Failure-free equivalence.
    let clean = spbc_run(w, vec![]);
    assert_eq!(native.outputs, clean.outputs, "{}: failure-free mismatch", w.name());
    // Crash rank 5's cluster after the first checkpoint wave.
    let failed = spbc_run(w, vec![FailurePlan::nth(RankId(5), 7)]);
    assert_eq!(failed.failures_handled, 1, "{}", w.name());
    assert_eq!(native.outputs, failed.outputs, "{}: recovered run diverged from native", w.name());
    // Containment: only cluster {4,5} restarted.
    assert_eq!(failed.restarts, vec![0, 0, 0, 0, 1, 1, 0, 0], "{}", w.name());
}

#[test]
fn minife_recovers_bitwise() {
    check_workload(Workload::MiniFe);
}

#[test]
fn minighost_recovers_bitwise() {
    check_workload(Workload::MiniGhost);
}

#[test]
fn amg_recovers_bitwise() {
    check_workload(Workload::Amg);
}

#[test]
fn gtc_recovers_bitwise() {
    check_workload(Workload::Gtc);
}

#[test]
fn milc_recovers_bitwise() {
    check_workload(Workload::Milc);
}

#[test]
fn cm1_recovers_bitwise() {
    check_workload(Workload::Cm1);
}

#[test]
fn nas_bt_recovers_bitwise() {
    check_workload(Workload::NasBt);
}

#[test]
fn nas_lu_recovers_bitwise() {
    check_workload(Workload::NasLu);
}

#[test]
fn nas_mg_recovers_bitwise() {
    check_workload(Workload::NasMg);
}

#[test]
fn nas_sp_recovers_bitwise() {
    check_workload(Workload::NasSp);
}

#[test]
fn early_failure_before_any_checkpoint() {
    // Crash before the first checkpoint wave: the cluster re-executes from
    // iteration zero, everything else replays.
    let w = Workload::MiniGhost;
    let native = native_run(w);
    let failed = spbc_run(w, vec![FailurePlan::nth(RankId(0), 2)]);
    assert_eq!(native.outputs, failed.outputs);
    assert_eq!(failed.restarts[0], 1);
}

#[test]
fn late_failure_on_last_iteration() {
    let w = Workload::Cm1;
    let native = native_run(w);
    let failed = spbc_run(w, vec![FailurePlan::nth(RankId(7), ITERS)]);
    assert_eq!(native.outputs, failed.outputs);
    assert_eq!(failed.restarts[6..8], [1, 1]);
}
