//! Chaos campaign: many failures over one long execution, hitting every
//! cluster, with checkpoints interleaved — the MTBF-of-hours regime the
//! paper's introduction targets, compressed into seconds.

use mini_mpi::failure::FailurePlan;
use mini_mpi::prelude::*;
use spbc_apps::{AppParams, Workload};
use spbc_core::{ClusterMap, Metrics, SpbcConfig, SpbcProvider};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;
const ITERS: u64 = 30;

fn params() -> AppParams {
    AppParams { iters: ITERS, elems: 192, compute: 1, seed: 101, sleep_us: 0 }
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig::new(WORLD).with_deadlock_timeout(Duration::from_secs(90))
}

#[test]
fn five_failures_across_all_clusters() {
    let w = Workload::MiniGhost;
    let native = Runtime::builder(cfg()).app(w.build(params())).launch().unwrap().ok().unwrap();

    let provider = Arc::new(SpbcProvider::new(
        ClusterMap::blocks(WORLD, 4),
        SpbcConfig { ckpt_interval: 4, ..Default::default() },
    ));
    // One failure per cluster plus a repeat — spread across the run so each
    // recovery completes (or overlaps harmlessly) before the next.
    let plans = vec![
        FailurePlan::nth(RankId(0), 3),
        FailurePlan::nth(RankId(3), 9),
        FailurePlan::nth(RankId(4), 15),
        FailurePlan::nth(RankId(7), 21),
        FailurePlan::nth(RankId(1), 13),
    ];
    let report = Runtime::builder(cfg())
        .provider(provider.clone())
        .app(w.build(params()))
        .plans(plans)
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    assert_eq!(report.failures_handled, 5);
    assert_eq!(native.outputs, report.outputs, "five recoveries, still bitwise exact");
    // Every cluster restarted at least once.
    for pair in report.restarts.chunks(2) {
        assert!(pair.iter().any(|&r| r > 0), "restarts: {:?}", report.restarts);
    }
    let m = provider.metrics();
    assert!(Metrics::get(&m.rollbacks) >= 10);
    assert!(Metrics::get(&m.replayed_msgs) > 0);
}

#[test]
fn failure_during_anothers_recovery() {
    // The second cluster dies while the first is still catching up: the
    // paper's multiple-concurrent-failures claim (§3.1), sequentialized by
    // the runtime but overlapping at the protocol level (the Rollback
    // mirroring path).
    let w = Workload::Milc;
    let native = Runtime::builder(cfg()).app(w.build(params())).launch().unwrap().ok().unwrap();
    let provider = Arc::new(SpbcProvider::new(
        ClusterMap::blocks(WORLD, 4),
        SpbcConfig { ckpt_interval: 5, ..Default::default() },
    ));
    // Back-to-back: rank 2's cluster dies at iteration 10; rank 4's dies at
    // its own iteration 11 — while cluster {2,3} is still replaying.
    let plans = vec![FailurePlan::nth(RankId(2), 11), FailurePlan::nth(RankId(4), 12)];
    let report = Runtime::builder(cfg())
        .provider(provider)
        .app(w.build(params()))
        .plans(plans)
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    assert_eq!(report.failures_handled, 2);
    assert_eq!(native.outputs, report.outputs);
}

#[test]
fn every_evaluation_workload_survives_three_failures() {
    for w in Workload::EVALUATION {
        let native = Runtime::builder(cfg()).app(w.build(params())).launch().unwrap().ok().unwrap();
        let provider = Arc::new(SpbcProvider::new(
            ClusterMap::blocks(WORLD, 4),
            SpbcConfig { ckpt_interval: 6, ..Default::default() },
        ));
        let plans = vec![
            FailurePlan::nth(RankId(1), 5),
            FailurePlan::nth(RankId(6), 14),
            FailurePlan::nth(RankId(3), 25),
        ];
        let report = Runtime::builder(cfg())
            .provider(provider)
            .app(w.build(params()))
            .plans(plans)
            .launch()
            .unwrap()
            .ok()
            .unwrap();
        assert_eq!(report.failures_handled, 3, "{}", w.name());
        assert_eq!(native.outputs, report.outputs, "{}", w.name());
    }
}
