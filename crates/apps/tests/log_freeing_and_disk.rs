//! §6.2's storage story, end to end: log memory is freed when checkpoints
//! commit (entries move to the stable archive), recovery replays from the
//! archive transparently, and committed checkpoints can be mirrored to disk.

use mini_mpi::failure::FailurePlan;
use mini_mpi::prelude::*;
use spbc_apps::{AppParams, Workload};
use spbc_core::disk::DiskStore;
use spbc_core::{ClusterMap, SpbcConfig, SpbcProvider, Storage};
use std::sync::Arc;
use std::time::Duration;

const WORLD: usize = 8;

fn params() -> AppParams {
    AppParams { iters: 9, elems: 256, compute: 1, seed: 77, sleep_us: 0 }
}

fn cfg() -> RuntimeConfig {
    RuntimeConfig::new(WORLD).with_deadlock_timeout(Duration::from_secs(60))
}

fn native(w: Workload) -> RunReport {
    Runtime::builder(cfg()).app(w.build(params())).launch().unwrap().ok().unwrap()
}

#[test]
fn freed_logs_still_recover_bitwise() {
    let w = Workload::MiniGhost;
    let base = native(w);
    let provider = Arc::new(SpbcProvider::new(
        ClusterMap::blocks(WORLD, 4),
        SpbcConfig { ckpt_interval: 3, free_logs_on_checkpoint: true, ..Default::default() },
    ));
    // Fail after the second checkpoint wave: the replay the recovering
    // cluster needs spans entries that were archived (and freed from
    // memory) by wave 1 and 2.
    let report = Runtime::builder(cfg())
        .provider(provider.clone())
        .app(w.build(params()))
        .plans(vec![FailurePlan::nth(RankId(2), 8)])
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    assert_eq!(report.failures_handled, 1);
    assert_eq!(base.outputs, report.outputs, "archive-backed replay must be exact");
}

#[test]
fn freeing_actually_releases_node_memory() {
    let w = Workload::MiniGhost;
    let run = |free: bool| {
        let provider = Arc::new(SpbcProvider::new(
            ClusterMap::blocks(WORLD, 4),
            SpbcConfig { ckpt_interval: 3, free_logs_on_checkpoint: free, ..Default::default() },
        ));
        Runtime::builder(cfg())
            .provider(provider.clone())
            .app(w.build(params()))
            .launch()
            .unwrap()
            .ok()
            .unwrap();
        provider.store().total_logged_bytes()
    };
    let kept = run(false);
    let freed = run(true);
    assert!(kept > 0);
    // With freeing, only the entries logged after the last wave (iteration 9
    // has a wave at 9 — the final call — so possibly zero) remain in memory.
    assert!(
        freed < kept / 2,
        "freeing must shrink the in-memory log substantially: kept={kept} freed={freed}"
    );
}

#[test]
fn checkpoints_are_mirrored_to_disk() {
    let dir = std::env::temp_dir().join(format!("spbc-disk-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = Workload::Cm1;
    let provider = Arc::new(
        SpbcProvider::new(
            ClusterMap::blocks(WORLD, 4),
            SpbcConfig { ckpt_interval: 4, ..Default::default() },
        )
        .with_storage(Storage::memory().mirror_to(DiskStore::open(&dir).unwrap()))
        .unwrap(),
    );
    Runtime::builder(cfg())
        .provider(provider.clone())
        .app(w.build(params()))
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    // 9 iterations, wave at calls 4 and 8: two epochs per rank on disk.
    let disk = provider.disk().unwrap();
    for r in 0..WORLD as u32 {
        let epochs = disk.epochs_of(RankId(r)).unwrap();
        assert_eq!(epochs, vec![1, 2], "rank {r}");
        let ck = disk.load(RankId(r), 2).unwrap().unwrap();
        assert!(!ck.app_state.is_empty());
    }
    // The durable wave agreement matches the in-memory one.
    let ranks: Vec<RankId> = (0..WORLD as u32).map(RankId).collect();
    assert_eq!(disk.common_epoch(&ranks).unwrap(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_mirror_with_recovery_keeps_the_common_wave_consistent() {
    let dir = std::env::temp_dir().join(format!("spbc-disk-rec-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let w = Workload::MiniGhost;
    let base = native(w);
    let provider = Arc::new(
        SpbcProvider::new(
            ClusterMap::blocks(WORLD, 4),
            SpbcConfig { ckpt_interval: 3, ..Default::default() },
        )
        .with_storage(Storage::memory().mirror_to(DiskStore::open(&dir).unwrap()))
        .unwrap(),
    );
    let report = Runtime::builder(cfg())
        .provider(provider.clone())
        .app(w.build(params()))
        .plans(vec![FailurePlan::nth(RankId(5), 5)])
        .launch()
        .unwrap()
        .ok()
        .unwrap();
    assert_eq!(base.outputs, report.outputs);
    let disk = provider.disk().unwrap();
    let ranks: Vec<RankId> = (0..WORLD as u32).map(RankId).collect();
    // All three waves (iterations 3, 6, 9) committed everywhere despite the
    // mid-run rollback of cluster {4,5}.
    assert_eq!(disk.common_epoch(&ranks).unwrap(), 3);
    let _ = std::fs::remove_dir_all(&dir);
}
