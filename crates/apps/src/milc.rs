//! MILC skeleton: SU(3) lattice gauge theory on a 4-D torus. In
//! communication terms: gauge-link exchange with the eight 4-D neighbors
//! every sweep plus a global plaquette sum.
//!
//! The neighbor gathers use `MPI_ANY_SOURCE` (one direction-tagged wildcard
//! receive per incoming face) — the one pattern the paper modified for MILC.

use crate::compute;
use crate::grid;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;
use spbc_core::{PatternId, Patterns};

const TAG_DIR_BASE: Tag = 500;

/// Build the MILC rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let dims = grid::dims_create(n, 4);
        let face = (p.elems / 16).max(4);

        let mut state: (u64, Vec<f64>, Patterns) = rank.restore()?.unwrap_or_else(|| {
            let mut pats = Patterns::new();
            let _gather = pats.declare();
            (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64)), pats)
        });
        let gather = PatternId(1);

        while state.0 < p.iters {
            rank.failure_point()?;
            let (_, field, pats) = &mut state;

            // --- Gauge-link gather: 8 directions, ANY_SOURCE per direction
            //     tag (the modified pattern). ---
            pats.begin_iteration(rank, gather)?;
            let mut recvs = Vec::new();
            let mut sends = Vec::new();
            for axis in 0..4 {
                for (d, dir) in [(0usize, 1isize), (1, -1)] {
                    let to = grid::neighbor(me, &dims, axis, dir);
                    let tag = TAG_DIR_BASE + (axis * 2 + d) as Tag;
                    if to != me {
                        // The sender is unambiguous per direction, but the
                        // receive is posted anonymously (as in the original).
                        recvs.push(rank.irecv(COMM_WORLD, Source::Any, tag)?);
                        let payload: Vec<f64> = field[(axis * face) % field.len()..]
                            .iter()
                            .take(face)
                            .copied()
                            .collect();
                        sends.push(rank.isend(COMM_WORLD, to, tag, &payload)?);
                    }
                }
            }
            let mut faces = rank.waitall(&recvs)?;
            rank.waitall(&sends)?;
            pats.end_iteration(rank, gather)?;

            // Canonical fold (by source then tag).
            faces.sort_by_key(|(st, _)| (st.tag, st.src));
            for (st, payload) in &faces {
                let ghost: Vec<f64> = mini_mpi::datatype::unpack(payload.as_ref().expect("face"))?;
                let off = (st.tag as usize * 13) % field.len();
                for (i, g) in ghost.iter().enumerate() {
                    let idx = (off + i) % field.len();
                    field[idx] = 0.92 * field[idx] + 0.08 * g;
                }
            }

            // Link update (moderate compute) + plaquette sum.
            compute::work_timed(field, p.compute * 2, p.sleep_us);
            let local: f64 = field.iter().take(32).sum();
            let plaquette = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local])?;
            field[0] += 1e-9 * plaquette[0].abs().min(1e3);

            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 4, elems: 256, compute: 1, seed: 9, sleep_us: 0 }
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || Runtime::run_native(8, app(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn runs_on_non_power_of_two() {
        let report = Runtime::run_native(6, app(params())).unwrap().ok().unwrap();
        assert_eq!(report.outputs.len(), 6);
    }
}
