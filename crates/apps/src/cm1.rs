//! CM1 skeleton: a 3-D nonhydrostatic atmospheric model. In communication
//! terms: a 2-D horizontal domain decomposition with 4-neighbor halo
//! exchange (named receives, open boundaries — the atmosphere does not wrap)
//! and a rare global CFL reduction; strongly compute-bound.
//!
//! The open boundary matters for the paper's recovery observation (§6.4): a
//! corner/edge rank may have *no* inter-cluster channel at all, recovers at
//! failure-free speed, and thereby bounds the whole cluster's recovery
//! speedup.

use crate::compute;
use crate::grid;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;

const TAG_HALO_BASE: Tag = 600;

/// Build the CM1 rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let dims = grid::dims_create(n, 2);
        let face = (p.elems / 16).max(4);

        let mut state: (u64, Vec<f64>) = rank
            .restore()?
            .unwrap_or_else(|| (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64))));

        while state.0 < p.iters {
            rank.failure_point()?;
            let field = &mut state.1;

            // 4-neighbor halo exchange, open boundaries, named receives.
            let mut recvs = Vec::new();
            let mut sends = Vec::new();
            for axis in 0..2 {
                for (d, dir) in [(0usize, 1isize), (1, -1)] {
                    let tag = TAG_HALO_BASE + (axis * 2 + d) as Tag;
                    if let Some(from) = grid::neighbor_open(me, &dims, axis, -dir) {
                        recvs.push(rank.irecv(COMM_WORLD, from as u32, tag)?);
                    }
                    if let Some(to) = grid::neighbor_open(me, &dims, axis, dir) {
                        let payload: Vec<f64> = field[..face.min(field.len())].to_vec();
                        sends.push(rank.isend(COMM_WORLD, to, tag, &payload)?);
                    }
                }
            }
            let halos = rank.waitall(&recvs)?;
            rank.waitall(&sends)?;
            for (k, (_st, payload)) in halos.iter().enumerate() {
                let ghost: Vec<f64> = mini_mpi::datatype::unpack(payload.as_ref().expect("halo"))?;
                for (i, g) in ghost.iter().enumerate() {
                    let idx = (k * 29 + i) % field.len();
                    field[idx] = 0.97 * field[idx] + 0.03 * g;
                }
            }

            // Microphysics / dynamics: the heavy part.
            compute::work_timed(field, p.compute * 6, p.sleep_us);

            // CFL check every few steps only (rare global communication).
            if state.0 % 4 == 3 {
                let local_max = field.iter().take(64).fold(0.0f64, |a, &b| a.max(b.abs()));
                let _cfl = rank.allreduce(COMM_WORLD, ReduceOp::Max, &[local_max])?;
            }

            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 6, elems: 256, compute: 1, seed: 13, sleep_us: 0 }
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || Runtime::run_native(6, app(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn corner_ranks_have_fewer_neighbors() {
        let report = Runtime::run_native(9, app(params())).unwrap().ok().unwrap();
        // 3x3 grid: the corner (rank 0) talks to 2 neighbors, the center
        // (rank 4) to 4.
        let corner: u64 = report.stats[0].sent_msgs.iter().filter(|&&m| m > 0).count() as u64;
        let center: u64 = report.stats[4].sent_msgs.iter().filter(|&&m| m > 0).count() as u64;
        assert!(center > corner);
    }
}
