//! MiniFE skeleton: an unstructured implicit finite-element solve — in
//! communication terms, conjugate-gradient iterations over a 1-D row
//! partition: a small halo exchange with the two row neighbors plus two
//! dot-product allreduces per iteration, dominated by local sparse-matrix
//! compute (the paper measures <10 % communication time).
//!
//! MiniFE is one of the four applications the paper modified: its halo
//! exchange posts **anonymous** receives, so the exchange is wrapped in one
//! SPBC pattern (a single `BEGIN_ITERATION`/`END_ITERATION` pair — §6.1
//! "only one communication pattern was modified").

use crate::compute;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;
use spbc_core::Patterns;

const TAG_HALO: Tag = 200;

/// Build the MiniFE rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let halo = (p.elems / 64).max(4);

        let mut state: (u64, Vec<f64>, Patterns) = rank.restore()?.unwrap_or_else(|| {
            let mut pats = Patterns::new();
            let _exchange = pats.declare();
            (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64)), pats)
        });
        let exchange = spbc_core::PatternId(1);

        // Row neighbors (open chain, like a banded matrix).
        let mut neighbors = Vec::new();
        if me > 0 {
            neighbors.push(me - 1);
        }
        if me + 1 < n {
            neighbors.push(me + 1);
        }

        while state.0 < p.iters {
            rank.failure_point()?;
            let (_, field, pats) = &mut state;

            // --- Halo exchange with ANY_SOURCE (the modified pattern) ---
            pats.begin_iteration(rank, exchange)?;
            let mut recvs = Vec::new();
            for _ in &neighbors {
                recvs.push(rank.irecv(COMM_WORLD, Source::Any, TAG_HALO)?);
            }
            let mut sends = Vec::new();
            for &nb in &neighbors {
                let payload: Vec<f64> = field[..halo.min(field.len())].to_vec();
                sends.push(rank.isend(COMM_WORLD, nb, TAG_HALO, &payload)?);
            }
            let halos = rank.waitall(&recvs)?;
            rank.waitall(&sends)?;
            pats.end_iteration(rank, exchange)?;

            // Fold halos in canonical (source-rank) order: the arrival order
            // of the anonymous receives must not influence the state, or the
            // application would not be channel-deterministic (floating-point
            // addition is not associative).
            let mut halos = halos;
            halos.sort_by_key(|(st, _)| st.src);
            for (st, payload) in &halos {
                let ghost: Vec<f64> = mini_mpi::datatype::unpack(payload.as_ref().expect("halo"))?;
                let scale = 1.0 + st.src.0 as f64 * 1e-3;
                for (i, g) in ghost.iter().enumerate() {
                    let idx = i % field.len();
                    field[idx] += 1e-3 * g * scale;
                }
            }

            // --- CG body: matvec (heavy compute) + two dot products ---
            compute::work_timed(field, p.compute * 4, p.sleep_us);
            let local_dot: f64 = field.iter().take(64).map(|x| x * x).sum();
            let rho = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local_dot])?;
            let alpha = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local_dot * 0.5])?;
            let f = 1e-6 * (rho[0] - alpha[0]).abs().min(1.0);
            for x in field.iter_mut().take(32) {
                *x += f;
            }

            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 5, elems: 512, compute: 1, seed: 3, sleep_us: 0 }
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || Runtime::run_native(6, app(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn works_on_two_ranks() {
        let report = Runtime::run_native(2, app(params())).unwrap().ok().unwrap();
        assert!(!report.outputs[0].is_empty());
    }
}
