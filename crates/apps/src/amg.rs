//! BoomerAMG skeleton: the assumed-partition, data-dependent exchange of
//! Figure 4 (Baker/Falgout/Yang's algorithm, §5.1 of the paper).
//!
//! Each rank computes — from its local data — which ranks it must contact,
//! but **nobody knows who will contact them, or how many times**. Requests
//! are therefore discovered with `MPI_Iprobe(MPI_ANY_SOURCE, tag1)`; every
//! request is answered immediately with a reply on `tag2`.
//!
//! Properties reproduced from the paper:
//! * the reply order on a process depends on request *arrival* order, so the
//!   code is **channel-deterministic but not send-deterministic** (§5.1) —
//!   the determinism checkers in `spbc-trace` verify exactly this;
//! * three such patterns exist (the paper modified three); we run the
//!   exchange three times per iteration under three distinct pattern ids;
//! * over half the execution time is communication (§6.4), so AMG shows the
//!   paper's largest recovery speedup.
//!
//! Termination: the real code runs a distributed termination-detection
//! algorithm; we pre-distribute the per-destination request counts with an
//! `alltoall` (same effect — a process knows when its iteration is done —
//! with a simpler skeleton; the alltoall itself is ordinary logged traffic).

use crate::compute;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::util::XorShift64;
use mini_mpi::wire::to_bytes;
use spbc_core::{PatternId, Patterns};

const TAG_REQ: Tag = 300; // "tag1" of Figure 4
const TAG_REP: Tag = 301; // "tag2" of Figure 4
const PHASES: usize = 3;

/// Contacts of `me` in `phase` of `iter`: data-dependent (pseudo-random) but
/// a pure function of the configuration — every execution agrees.
fn contacts(me: usize, n: usize, iter: u64, phase: usize, seed: u64) -> Vec<usize> {
    if n <= 1 {
        return Vec::new();
    }
    let mut rng = XorShift64::new(
        seed ^ (me as u64) << 32 ^ iter.wrapping_mul(0x9E37) ^ (phase as u64) << 17 | 1,
    );
    let k = 1 + (rng.below(3) as usize).min(n - 2);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let c = rng.below(n as u64) as usize;
        if c != me && !out.contains(&c) {
            out.push(c);
        }
    }
    out.sort_unstable();
    out
}

/// Build the AMG rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let reply_len = (p.elems / 32).max(4);

        // State = (iteration, field, interpolation weights, patterns). The
        // weight table is seeded without a rank term: identical on every
        // rank and constant across iterations, so content-defined chunking
        // deduplicates it across both ranks and epochs.
        let mut state: (u64, Vec<f64>, Vec<f64>, Patterns) = rank.restore()?.unwrap_or_else(|| {
            let mut pats = Patterns::new();
            for _ in 0..PHASES {
                pats.declare();
            }
            (
                0,
                compute::init_field(p.elems, p.seed.wrapping_add(me as u64)),
                compute::init_field(p.elems, p.seed ^ 0xa316_11eb),
                pats,
            )
        });

        while state.0 < p.iters {
            rank.failure_point()?;
            let iter = state.0;
            for phase in 0..PHASES {
                let (_, field, weights, pats) = &mut state;
                let my_contacts = contacts(me, n, iter, phase, p.seed);

                // How many requests will reach me this phase? (Termination
                // bookkeeping; ordinary collective traffic.)
                let mut outgoing = vec![0u64; n];
                for &c in &my_contacts {
                    outgoing[c] = 1;
                }
                let sendparts: Vec<Vec<u64>> = outgoing.iter().map(|&x| vec![x]).collect();
                let counts = rank.alltoall(COMM_WORLD, &sendparts)?;
                let expected: u64 = counts.iter().map(|v| v[0]).sum();

                // --- Figure 4, wrapped in its pattern iteration ---
                pats.begin_iteration(rank, PatternId(phase as u32 + 1))?;
                let mut reply_reqs = Vec::with_capacity(my_contacts.len());
                for &c in &my_contacts {
                    // Post the reply receive, then fire the request.
                    reply_reqs.push(rank.irecv(COMM_WORLD, c as u32, TAG_REP)?);
                    let q = [me as f64, iter as f64, phase as f64];
                    rank.send(COMM_WORLD, c, TAG_REQ, &q)?;
                }
                let mut served = 0u64;
                let mut replies: Vec<Option<(Status, Vec<f64>)>> = vec![None; my_contacts.len()];
                let mut replies_done = 0usize;
                while served < expected || replies_done < my_contacts.len() {
                    let mut progressed = false;
                    // Serve whoever shows up (MPI_ANY_SOURCE + Iprobe).
                    if served < expected {
                        if let Some(st) = rank.iprobe(COMM_WORLD, Source::Any, TAG_REQ)? {
                            let (_q, qst) = rank.recv::<f64>(COMM_WORLD, st.src.0, TAG_REQ)?;
                            let ans: Vec<f64> = field
                                .iter()
                                .take(reply_len)
                                .map(|x| x + qst.src.0 as f64 * 1e-6)
                                .collect();
                            rank.send(COMM_WORLD, qst.src.idx(), TAG_REP, &ans)?;
                            served += 1;
                            progressed = true;
                        }
                    }
                    // Collect replies as they complete (MPI_Testall spirit).
                    for (i, r) in reply_reqs.iter().enumerate() {
                        if replies[i].is_none() {
                            if let Some((st, payload)) = rank.test(*r)? {
                                let data: Vec<f64> =
                                    mini_mpi::datatype::unpack(payload.as_ref().expect("reply"))?;
                                replies[i] = Some((st, data));
                                replies_done += 1;
                                progressed = true;
                            }
                        }
                    }
                    if !progressed {
                        // Nothing available: block briefly instead of
                        // spinning (counts as communication wait time).
                        rank.pump(std::time::Duration::from_micros(200))?;
                    }
                }
                pats.end_iteration(rank, PatternId(phase as u32 + 1))?;

                // Fold replies in contact order (canonical, arrival-independent).
                for (i, slot) in replies.iter().enumerate() {
                    let (_st, data) = slot.as_ref().expect("all replies collected");
                    for (j, v) in data.iter().enumerate() {
                        let idx = (i * 31 + j) % field.len();
                        field[idx] = 0.95 * field[idx] + 0.05 * weights[idx] * v;
                    }
                }
                compute::work_timed(field, p.compute.max(1) / 2 + 1, p.sleep_us);
            }
            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 3, elems: 256, compute: 1, seed: 11, sleep_us: 0 }
    }

    #[test]
    fn contacts_are_deterministic_and_valid() {
        for me in 0..6 {
            let a = contacts(me, 6, 2, 1, 42);
            let b = contacts(me, 6, 2, 1, 42);
            assert_eq!(a, b);
            assert!(!a.contains(&me));
            assert!(a.iter().all(|&c| c < 6));
            assert!(!a.is_empty());
        }
        assert!(contacts(0, 1, 0, 0, 42).is_empty());
    }

    #[test]
    fn contacts_vary_with_iteration_and_phase() {
        let base = contacts(3, 8, 0, 0, 42);
        let other_iter = contacts(3, 8, 1, 0, 42);
        let other_phase = contacts(3, 8, 0, 1, 42);
        assert!(base != other_iter || base != other_phase);
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || Runtime::run_native(6, app(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }
}
