//! MiniGhost skeleton: finite-difference stencil with ghost-cell boundary
//! exchange on a 3-D process grid.
//!
//! The paper's most communication-intensive workload (Table 1: largest log
//! growth). Six-face halo exchange per iteration with named receives — no
//! `MPI_ANY_SOURCE`, so it runs under SPBC completely unmodified.

use crate::compute;
use crate::grid;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;

const TAG_FACE_BASE: Tag = 100;

/// Build the MiniGhost rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let dims = grid::dims_create(n, 3);
        // Large faces, exchanged every iteration: communication-heavy.
        let face = (p.elems / 4).max(8);

        // State = (iteration, field, stencil coefficients). The coefficient
        // table is derived from the run seed alone — no rank term — so every
        // rank checkpoints an identical copy; content-defined chunking stores
        // it once for the whole job (cross-rank dedup), and it never changes
        // between waves (cross-epoch dedup).
        let mut state: (u64, Vec<f64>, Vec<f64>) = rank.restore()?.unwrap_or_else(|| {
            (
                0,
                compute::init_field(p.elems, p.seed.wrapping_add(me as u64)),
                compute::init_field(p.elems, p.seed ^ 0x5bbc_c0ef),
            )
        });
        while state.0 < p.iters {
            rank.failure_point()?;
            let (_, field, coeffs) = &mut state;
            // Post all six receives, then send all six faces (named, tagged
            // by direction so opposite faces cannot mix).
            let mut recvs = Vec::with_capacity(6);
            let mut sends = Vec::with_capacity(6);
            for axis in 0..3 {
                for (d, dir) in [(0usize, 1isize), (1, -1)] {
                    let to = grid::neighbor(me, &dims, axis, dir);
                    let from = grid::neighbor(me, &dims, axis, -dir);
                    let tag = TAG_FACE_BASE + (axis * 2 + d) as Tag;
                    if from != me {
                        recvs.push(rank.irecv(COMM_WORLD, from as u32, tag)?);
                    }
                    if to != me {
                        let lo = (axis * face).min(field.len() - face.min(field.len()));
                        let payload: Vec<f64> = field[lo..(lo + face).min(field.len())].to_vec();
                        sends.push(rank.isend(COMM_WORLD, to, tag, &payload)?);
                    }
                }
            }
            let halos = rank.waitall(&recvs)?;
            rank.waitall(&sends)?;
            // Fold the halos into the boundary region, then the stencil sweep.
            for (k, (_st, payload)) in halos.iter().enumerate() {
                let ghost: Vec<f64> =
                    mini_mpi::datatype::unpack(payload.as_ref().expect("halo payload"))?;
                let off = (k * 17) % field.len().max(1);
                for (i, g) in ghost.iter().enumerate() {
                    let idx = (off + i) % field.len();
                    field[idx] = 0.9 * field[idx] + 0.1 * coeffs[idx] * g;
                }
            }
            compute::work_timed(field, p.compute, p.sleep_us);
            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn params() -> AppParams {
        AppParams { iters: 6, elems: 256, compute: 1, seed: 7, sleep_us: 0 }
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || {
            Runtime::builder(RuntimeConfig::new(8))
                .app(Arc::new(app(params())))
                .launch()
                .unwrap()
                .ok()
                .unwrap()
                .outputs
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a.iter().all(|o| !o.is_empty()));
    }

    #[test]
    fn single_rank_degenerates_gracefully() {
        let report = Runtime::run_native(1, app(params())).unwrap().ok().unwrap();
        assert!(!report.outputs[0].is_empty());
    }

    #[test]
    fn communication_is_heavy() {
        let report = Runtime::run_native(8, app(params())).unwrap().ok().unwrap();
        // Six faces per iteration per rank.
        assert!(report.stats[0].total_sent_msgs() >= 6 * 6);
    }
}
