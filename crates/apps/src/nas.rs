//! NAS parallel benchmark skeletons (BT, SP, LU, MG) — the workloads of the
//! paper's HydEE comparison (Figure 6). All four use only named receives
//! (no wildcards), so they run under both SPBC and HydEE unmodified.

use crate::compute;
use crate::grid;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;

const TAG_SWEEP: Tag = 700;
const TAG_WAVE: Tag = 710;
const TAG_LEVEL_BASE: Tag = 720;

/// ADI line-sweep skeleton shared by BT and SP: alternate pipelined sweeps
/// along the rows and columns of a 2-D process grid, plus a residual
/// allreduce per iteration. `msg_scale` and `compute_scale` differentiate
/// BT (fewer, larger messages; heavier compute) from SP (more, smaller).
fn adi_app(
    p: AppParams,
    msg_scale: usize,
    compute_scale: u32,
    sweeps: usize,
    chunks: usize,
) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let dims = grid::dims_create(n, 2);
        let line = ((p.elems / 16) * msg_scale / chunks).max(4);

        let mut state: (u64, Vec<f64>) = rank
            .restore()?
            .unwrap_or_else(|| (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64))));
        while state.0 < p.iters {
            rank.failure_point()?;
            let field = &mut state.1;
            for sweep in 0..sweeps {
                for axis in 0..2 {
                    // Pipelined forward sweep, one k-plane chunk at a time
                    // (real ADI pipelines fine-grained so downstream ranks
                    // start early): receive a chunk, factor, forward it.
                    for chunk in 0..chunks {
                        if let Some(from) = grid::neighbor_open(me, &dims, axis, -1) {
                            let (line_in, _) =
                                rank.recv::<f64>(COMM_WORLD, from as u32, TAG_SWEEP)?;
                            for (i, v) in line_in.iter().enumerate() {
                                let idx = (i * 7 + sweep + chunk) % field.len();
                                field[idx] = 0.9 * field[idx] + 0.1 * v;
                            }
                        }
                        compute::work_timed(
                            field,
                            (p.compute * compute_scale).div_ceil(chunks as u32),
                            p.sleep_us,
                        );
                        if let Some(to) = grid::neighbor_open(me, &dims, axis, 1) {
                            let payload: Vec<f64> = field[..line.min(field.len())].to_vec();
                            rank.send(COMM_WORLD, to, TAG_SWEEP, &payload)?;
                        }
                    }
                }
            }
            let local: f64 = field.iter().take(16).sum();
            let _res = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local])?;
            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

/// NAS BT: block-tridiagonal ADI — larger lines, heavier factorization,
/// coarser pipeline.
pub fn bt(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    adi_app(p, 3, 3, 1, 6)
}

/// NAS SP: scalar-pentadiagonal ADI — smaller lines, more sweeps, finer
/// pipeline.
pub fn sp(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    adi_app(p, 1, 1, 2, 8)
}

/// NAS LU: SSOR wavefront — each iteration a lower sweep (receive from
/// north/west, compute, send south/east) and a mirrored upper sweep.
pub fn lu(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let dims = grid::dims_create(n, 2);
        let line = (p.elems / 64).max(4);

        let mut state: (u64, Vec<f64>) = rank
            .restore()?
            .unwrap_or_else(|| (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64))));
        while state.0 < p.iters {
            rank.failure_point()?;
            let field = &mut state.1;
            const CHUNKS: u32 = 6; // per-plane pipelining, as in real SSOR
            for (dir, tag_off) in [(-1isize, 0u32), (1, 1)] {
                for chunk in 0..CHUNKS {
                    // Wavefront: consume from upstream in both axes, factor,
                    // produce downstream in both axes, one plane at a time.
                    for axis in 0..2 {
                        if let Some(from) = grid::neighbor_open(me, &dims, axis, -dir) {
                            let (v, _) =
                                rank.recv::<f64>(COMM_WORLD, from as u32, TAG_WAVE + tag_off)?;
                            for (i, x) in v.iter().enumerate() {
                                let idx = (i * 11 + axis + chunk as usize) % field.len();
                                field[idx] = 0.93 * field[idx] + 0.07 * x;
                            }
                        }
                    }
                    compute::work_timed(field, (p.compute * 2).div_ceil(CHUNKS), p.sleep_us);
                    for axis in 0..2 {
                        if let Some(to) = grid::neighbor_open(me, &dims, axis, dir) {
                            let payload: Vec<f64> = field[..line.min(field.len())].to_vec();
                            rank.send(COMM_WORLD, to, TAG_WAVE + tag_off, &payload)?;
                        }
                    }
                }
            }
            let local: f64 = field.iter().take(16).sum();
            let _norm = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local])?;
            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

/// NAS MG: multigrid V-cycle — halo exchanges with ring partners at stride
/// 2^level going down, then back up, plus the norm allreduce.
pub fn mg(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let levels = (usize::BITS - n.leading_zeros()).clamp(1, 4) as usize;
        let face = (p.elems / 32).max(4);

        let mut state: (u64, Vec<f64>) = rank
            .restore()?
            .unwrap_or_else(|| (0, compute::init_field(p.elems, p.seed.wrapping_add(me as u64))));
        while state.0 < p.iters {
            rank.failure_point()?;
            let field = &mut state.1;
            // Down-leg then up-leg of the V-cycle.
            let schedule: Vec<usize> = (0..levels).chain((0..levels).rev()).collect();
            for (k, &lvl) in schedule.iter().enumerate() {
                if n > 1 {
                    let stride = 1usize << lvl;
                    let to = (me + stride) % n;
                    let from = (me + n - stride) % n;
                    let tag = TAG_LEVEL_BASE + lvl as Tag;
                    if to != me {
                        let rreq = rank.irecv(COMM_WORLD, from as u32, tag)?;
                        let payload: Vec<f64> =
                            field[..(face >> lvl).max(2).min(field.len())].to_vec();
                        rank.send(COMM_WORLD, to, tag, &payload)?;
                        let (_st, data) = rank.wait(rreq)?;
                        let ghost: Vec<f64> = mini_mpi::datatype::unpack(&data.expect("mg halo"))?;
                        for (i, g) in ghost.iter().enumerate() {
                            let idx = (k * 19 + i) % field.len();
                            field[idx] = 0.9 * field[idx] + 0.1 * g;
                        }
                    }
                }
                compute::work_timed(field, p.compute, p.sleep_us);
            }
            let local: f64 = field.iter().take(16).map(|x| x * x).sum();
            let _norm = rank.allreduce(COMM_WORLD, ReduceOp::Sum, &[local])?;
            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        Ok(to_bytes(&compute::checksum(&state.1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 4, elems: 256, compute: 1, seed: 17, sleep_us: 0 }
    }

    #[test]
    fn bt_runs_and_is_deterministic() {
        let run = || Runtime::run_native(4, bt(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn sp_runs() {
        let r = Runtime::run_native(4, sp(params())).unwrap().ok().unwrap();
        assert_eq!(r.outputs.len(), 4);
    }

    #[test]
    fn lu_runs_and_is_deterministic() {
        let run = || Runtime::run_native(4, lu(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn mg_runs_and_is_deterministic() {
        let run = || Runtime::run_native(8, mg(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn nas_apps_run_on_one_rank() {
        assert!(!Runtime::run_native(1, bt(params())).unwrap().ok().unwrap().outputs[0].is_empty());
        assert!(!Runtime::run_native(1, mg(params())).unwrap().ok().unwrap().outputs[0].is_empty());
    }
}
