//! Synthetic compute kernels.
//!
//! The workloads reproduce the *communication* skeletons of the paper's
//! applications; computation is synthetic but real work (floating-point
//! recurrences over the local state), so rollback genuinely re-computes and
//! the compute/communication ratio is tunable to match the paper's IPM
//! observations (§6.4: AMG >50 % communication, CM1/GTC/MiniFE <10 %).

/// Run `units` rounds of a floating-point recurrence over `data`.
///
/// Deterministic, order-stable, and not optimizable to a closed form: the
/// result feeds back into the state so re-execution after rollback must redo
/// exactly this work.
pub fn work(data: &mut [f64], units: u32) {
    for round in 0..units {
        let c = 1.0 + 1e-9 * f64::from(round);
        let mut prev = data.last().copied().unwrap_or(0.0);
        for x in data.iter_mut() {
            let v = (*x).mul_add(0.999_999_3, prev * 1e-6) + 1e-12 * c;
            prev = *x;
            *x = v;
        }
    }
}

/// Like [`work`], plus a virtual-compute delay of `units * sleep_us`
/// microseconds.
///
/// Timing experiments model computation as *sleep* rather than spin: on an
/// oversubscribed machine sleeping ranks overlap like ranks on dedicated
/// cores, so wall-clock ratios (overhead %, normalized recovery time) keep
/// the shape they would have on a real cluster. Correctness state evolution
/// still happens in the real `work` part.
pub fn work_timed(data: &mut [f64], units: u32, sleep_us: u64) {
    work(data, units);
    if sleep_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(units as u64 * sleep_us));
    }
}

/// Deterministic checksum of a state vector (order-sensitive).
pub fn checksum(data: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    for (i, &x) in data.iter().enumerate() {
        acc = acc.mul_add(0.5, x * (1.0 + (i % 7) as f64 * 1e-3));
    }
    acc
}

/// Deterministic pseudo-random initial field.
pub fn init_field(len: usize, seed: u64) -> Vec<f64> {
    let mut rng = mini_mpi::util::XorShift64::new(seed ^ 0xA5A5_5A5A_DEAD_BEEF);
    (0..len).map(|_| rng.unit_f64() * 2.0 - 1.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_is_deterministic() {
        let mut a = init_field(128, 3);
        let mut b = a.clone();
        work(&mut a, 5);
        work(&mut b, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn work_changes_state() {
        let mut a = init_field(64, 1);
        let before = a.clone();
        work(&mut a, 1);
        assert_ne!(a, before);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 2.0, 1.0];
        assert_ne!(checksum(&a), checksum(&b));
        assert_eq!(checksum(&a), checksum(&a));
    }

    #[test]
    fn init_field_depends_on_seed() {
        assert_ne!(init_field(8, 1), init_field(8, 2));
        assert_eq!(init_field(8, 1), init_field(8, 1));
    }
}
