//! Cartesian process-grid decompositions (the `MPI_Cart_*` equivalents the
//! stencil workloads need).

/// Factor `n` ranks into a near-cubic `dims`-dimensional process grid
/// (largest factors first) — the usual `MPI_Dims_create` behavior.
pub fn dims_create(n: usize, dims: usize) -> Vec<usize> {
    assert!(dims >= 1 && n >= 1);
    let mut out = vec![1usize; dims];
    let mut remaining = n;
    let mut f = 2usize;
    let mut factors = Vec::new();
    while f * f <= remaining {
        while remaining.is_multiple_of(f) {
            factors.push(f);
            remaining /= f;
        }
        f += 1;
    }
    if remaining > 1 {
        factors.push(remaining);
    }
    // Distribute factors largest-first onto the currently smallest dimension.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = (0..dims).min_by_key(|&i| out[i]).expect("dims >= 1");
        out[i] *= f;
    }
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Position of `rank` in a row-major grid of the given dims.
pub fn coords_of(rank: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0; dims.len()];
    let mut rem = rank;
    for (i, &d) in dims.iter().enumerate().rev() {
        coords[i] = rem % d;
        rem /= d;
    }
    coords
}

/// Rank of grid `coords` (row-major).
pub fn rank_of(coords: &[usize], dims: &[usize]) -> usize {
    let mut r = 0;
    for (c, d) in coords.iter().zip(dims) {
        debug_assert!(c < d);
        r = r * d + c;
    }
    r
}

/// Neighbor of `rank` along `axis` in direction `dir` (±1), with periodic
/// (torus) wrap-around.
pub fn neighbor(rank: usize, dims: &[usize], axis: usize, dir: isize) -> usize {
    let mut coords = coords_of(rank, dims);
    let d = dims[axis] as isize;
    coords[axis] = ((coords[axis] as isize + dir % d + d) % d) as usize;
    rank_of(&coords, dims)
}

/// Non-periodic neighbor: `None` at the boundary.
pub fn neighbor_open(rank: usize, dims: &[usize], axis: usize, dir: isize) -> Option<usize> {
    let mut coords = coords_of(rank, dims);
    let next = coords[axis] as isize + dir;
    if next < 0 || next >= dims[axis] as isize {
        return None;
    }
    coords[axis] = next as usize;
    Some(rank_of(&coords, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_create_products() {
        for n in [1usize, 2, 4, 6, 8, 12, 16, 27, 64, 100, 512] {
            for d in 1..=4 {
                let dims = dims_create(n, d);
                assert_eq!(dims.iter().product::<usize>(), n, "n={n} d={d}");
                assert_eq!(dims.len(), d);
            }
        }
    }

    #[test]
    fn dims_create_is_balanced() {
        assert_eq!(dims_create(64, 3), vec![4, 4, 4]);
        assert_eq!(dims_create(16, 2), vec![4, 4]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
    }

    #[test]
    fn coords_roundtrip() {
        let dims = [3usize, 4, 5];
        for r in 0..60 {
            let c = coords_of(r, &dims);
            assert_eq!(rank_of(&c, &dims), r);
        }
    }

    #[test]
    fn periodic_neighbors_wrap() {
        let dims = [4usize];
        assert_eq!(neighbor(0, &dims, 0, -1), 3);
        assert_eq!(neighbor(3, &dims, 0, 1), 0);
        assert_eq!(neighbor(1, &dims, 0, 1), 2);
    }

    #[test]
    fn open_neighbors_stop_at_boundary() {
        let dims = [2usize, 2];
        assert_eq!(neighbor_open(0, &dims, 0, -1), None);
        assert_eq!(neighbor_open(0, &dims, 0, 1), Some(2));
        assert_eq!(neighbor_open(3, &dims, 1, 1), None);
    }

    #[test]
    fn neighbors_are_mutual() {
        let dims = dims_create(24, 3);
        for r in 0..24 {
            for axis in 0..3 {
                let n = neighbor(r, &dims, axis, 1);
                assert_eq!(neighbor(n, &dims, axis, -1), r);
            }
        }
    }
}
