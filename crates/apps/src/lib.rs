//! # spbc-apps
//!
//! SPMD workloads reproducing the communication skeletons of the paper's
//! evaluation set (§6.1): MiniFE, MiniGhost, Boomer-AMG, GTC, MILC, CM1 —
//! plus the NAS BT/LU/MG/SP skeletons used for the HydEE comparison (§6.5).
//!
//! Every workload:
//! * is SPMD and channel-deterministic (Definition 2 of the paper);
//! * calls `failure_point` and `checkpoint_if_due` once per iteration
//!   boundary, so the runtime can inject crashes and the protocol can take
//!   coordinated checkpoints;
//! * restores its state through `Rank::restore`, so genuine rollback works;
//! * returns a deterministic checksum — recovered executions must match the
//!   failure-free ones *bitwise* (the integration suite asserts this).
//!
//! Wildcard usage matches §6.1: MiniFE, AMG, GTC and MILC use
//! `MPI_ANY_SOURCE` and carry the paper's pattern annotations (MiniFE, GTC,
//! MILC: one pattern each; AMG: three); MiniGhost, CM1 and the NAS kernels
//! use named receives only and run unmodified.

#![warn(missing_docs)]

pub mod amg;
pub mod cm1;
pub mod compute;
pub mod grid;
pub mod gtc;
pub mod milc;
pub mod minife;
pub mod minighost;
pub mod nas;

use mini_mpi::AppFn;
use std::sync::Arc;

/// Workload size/behavior knobs shared by all apps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AppParams {
    /// Outer iterations (checkpoint/failure-point boundaries).
    pub iters: u64,
    /// Local state size in `f64` elements (drives message sizes).
    pub elems: usize,
    /// Compute units per iteration (drives the compute/comm ratio).
    pub compute: u32,
    /// Seed for the deterministic initial state and data-dependent choices.
    pub seed: u64,
    /// Virtual-compute sleep per compute unit, microseconds (0 in
    /// correctness tests; timing experiments set it so ranks behave as if on
    /// dedicated cores — see `compute::work_timed`).
    pub sleep_us: u64,
}

impl Default for AppParams {
    fn default() -> Self {
        AppParams { iters: 20, elems: 1024, compute: 2, seed: 42, sleep_us: 0 }
    }
}

/// The workload catalogue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Finite-element CG solve (anonymous halo, 1 pattern).
    MiniFe,
    /// 3-D stencil ghost exchange (most communication-intensive; named).
    MiniGhost,
    /// Assumed-partition exchange of Figure 4 (Iprobe + ANY_SOURCE,
    /// 3 patterns; channel- but not send-deterministic).
    Amg,
    /// Particle-in-cell shift (anonymous shift, 1 pattern; compute-bound).
    Gtc,
    /// 4-D lattice gauge exchange (anonymous gather, 1 pattern).
    Milc,
    /// Atmospheric model (named halo, open boundaries; compute-bound).
    Cm1,
    /// NAS BT: block-tridiagonal ADI sweeps (named).
    NasBt,
    /// NAS LU: SSOR wavefront (named).
    NasLu,
    /// NAS MG: multigrid V-cycle (named).
    NasMg,
    /// NAS SP: scalar-pentadiagonal ADI sweeps (named).
    NasSp,
}

impl Workload {
    /// The six applications of the main evaluation (Tables 1-2, Figure 5).
    pub const EVALUATION: [Workload; 6] = [
        Workload::Amg,
        Workload::Cm1,
        Workload::Gtc,
        Workload::Milc,
        Workload::MiniFe,
        Workload::MiniGhost,
    ];

    /// The NAS set of the HydEE comparison (Figure 6).
    pub const NAS: [Workload; 4] =
        [Workload::NasBt, Workload::NasLu, Workload::NasMg, Workload::NasSp];

    /// Display name (as in the paper's tables).
    pub fn name(self) -> &'static str {
        match self {
            Workload::MiniFe => "MiniFE",
            Workload::MiniGhost => "MiniGhost",
            Workload::Amg => "AMG",
            Workload::Gtc => "GTC",
            Workload::Milc => "MILC",
            Workload::Cm1 => "CM1",
            Workload::NasBt => "BT",
            Workload::NasLu => "LU",
            Workload::NasMg => "MG",
            Workload::NasSp => "SP",
        }
    }

    /// Parse a display name.
    pub fn by_name(name: &str) -> Option<Workload> {
        Workload::EVALUATION
            .iter()
            .chain(Workload::NAS.iter())
            .copied()
            .find(|w| w.name().eq_ignore_ascii_case(name))
    }

    /// Does the workload post `MPI_ANY_SOURCE` receives (and therefore carry
    /// pattern annotations)? Matches §6.1.
    pub fn uses_any_source(self) -> bool {
        matches!(self, Workload::MiniFe | Workload::Amg | Workload::Gtc | Workload::Milc)
    }

    /// Number of patterns annotated with the API (§6.1: 1 for MiniFE, GTC
    /// and MILC; 3 for AMG; 0 elsewhere).
    pub fn annotated_patterns(self) -> usize {
        match self {
            Workload::Amg => 3,
            w if w.uses_any_source() => 1,
            _ => 0,
        }
    }

    /// Build the rank closure.
    pub fn build(self, p: AppParams) -> Arc<AppFn> {
        match self {
            Workload::MiniFe => Arc::new(minife::app(p)),
            Workload::MiniGhost => Arc::new(minighost::app(p)),
            Workload::Amg => Arc::new(amg::app(p)),
            Workload::Gtc => Arc::new(gtc::app(p)),
            Workload::Milc => Arc::new(milc::app(p)),
            Workload::Cm1 => Arc::new(cm1::app(p)),
            Workload::NasBt => Arc::new(nas::bt(p)),
            Workload::NasLu => Arc::new(nas::lu(p)),
            Workload::NasMg => Arc::new(nas::mg(p)),
            Workload::NasSp => Arc::new(nas::sp(p)),
        }
    }

    /// Parameters tuned so the compute/communication ratios follow the
    /// paper's IPM profile (§6.4: AMG >50% comm; MILC/MiniGhost moderate;
    /// CM1/GTC/MiniFE <10%).
    pub fn tuned_params(self, iters: u64, elems: usize) -> AppParams {
        let compute = match self {
            Workload::Amg => 1,
            Workload::MiniGhost | Workload::Milc => 2,
            Workload::NasBt | Workload::NasSp | Workload::NasLu | Workload::NasMg => 3,
            Workload::MiniFe | Workload::Gtc => 6,
            Workload::Cm1 => 8,
        };
        AppParams { iters, elems, compute, seed: 42, sleep_us: 0 }
    }

    /// Like [`Workload::tuned_params`] with virtual compute time enabled.
    pub fn timed_params(self, iters: u64, elems: usize, sleep_us: u64) -> AppParams {
        AppParams { sleep_us, ..self.tuned_params(iters, elems) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_is_consistent() {
        assert_eq!(Workload::EVALUATION.len(), 6);
        assert_eq!(Workload::NAS.len(), 4);
        for w in Workload::EVALUATION.iter().chain(Workload::NAS.iter()) {
            assert_eq!(Workload::by_name(w.name()), Some(*w));
        }
        assert_eq!(Workload::by_name("amg"), Some(Workload::Amg));
        assert_eq!(Workload::by_name("nope"), None);
    }

    #[test]
    fn any_source_set_matches_paper() {
        let any: Vec<&str> =
            Workload::EVALUATION.iter().filter(|w| w.uses_any_source()).map(|w| w.name()).collect();
        assert_eq!(any, vec!["AMG", "GTC", "MILC", "MiniFE"]);
        assert_eq!(Workload::Amg.annotated_patterns(), 3);
        assert_eq!(Workload::Milc.annotated_patterns(), 1);
        assert_eq!(Workload::Cm1.annotated_patterns(), 0);
    }

    #[test]
    fn every_workload_builds_and_runs() {
        for w in Workload::EVALUATION.iter().chain(Workload::NAS.iter()) {
            let p = AppParams { iters: 2, elems: 128, compute: 1, seed: 1, sleep_us: 0 };
            let report = mini_mpi::Runtime::builder(mini_mpi::config::RuntimeConfig::new(4))
                .app(w.build(p))
                .launch()
                .unwrap()
                .ok()
                .unwrap();
            assert_eq!(report.outputs.len(), 4, "{}", w.name());
        }
    }
}
