//! GTC skeleton: 3-D gyrokinetic particle-in-cell. In communication terms:
//! a particle *shift* between toroidal domain neighbors on a 1-D ring (the
//! number of migrating particles is data-dependent) plus a grid reduction
//! (charge deposition) every iteration; heavily compute-bound (<10 %
//! communication, §6.4).
//!
//! The shift receives use `MPI_ANY_SOURCE` — the one pattern the paper
//! modified for GTC — wrapped in a single pattern iteration.

use crate::compute;
use crate::AppParams;
use mini_mpi::prelude::*;
use mini_mpi::wire::to_bytes;
use spbc_core::{PatternId, Patterns};

const TAG_SHIFT: Tag = 400;

/// Build the GTC rank closure.
pub fn app(p: AppParams) -> impl Fn(&mut Rank) -> Result<Vec<u8>> + Send + Sync + 'static {
    move |rank: &mut Rank| {
        let me = rank.world_rank();
        let n = rank.world_size();
        let nparticles = p.elems;

        // (step, particle positions in [0,1), grid field, patterns)
        let mut state: (u64, Vec<f64>, Vec<f64>, Patterns) = rank.restore()?.unwrap_or_else(|| {
            let mut pats = Patterns::new();
            let _shift = pats.declare();
            let particles: Vec<f64> =
                compute::init_field(nparticles, p.seed.wrapping_add(me as u64))
                    .into_iter()
                    .map(|x| (x + 1.0) / 2.0)
                    .collect();
            (0, particles, vec![0.0; 64], pats)
        });
        let shift = PatternId(1);

        while state.0 < p.iters {
            rank.failure_point()?;
            let (_, particles, grid, pats) = &mut state;

            // Push phase (heavy compute): move particles.
            compute::work_timed(particles, p.compute * 4, p.sleep_us);
            for x in particles.iter_mut() {
                *x = (*x + 0.07).rem_euclid(1.0);
            }

            if n > 1 {
                // Particles leaving the local toroidal section migrate: the
                // counts depend on the data, the channels do not.
                let left: Vec<f64> = particles.iter().copied().filter(|&x| x < 0.1).collect();
                let right: Vec<f64> = particles.iter().copied().filter(|&x| x > 0.9).collect();
                particles.retain(|&x| (0.1..=0.9).contains(&x));

                pats.begin_iteration(rank, shift)?;
                let r1 = rank.irecv(COMM_WORLD, Source::Any, TAG_SHIFT)?;
                let r2 = rank.irecv(COMM_WORLD, Source::Any, TAG_SHIFT)?;
                let s1 = rank.isend(COMM_WORLD, (me + n - 1) % n, TAG_SHIFT, &left)?;
                let s2 = rank.isend(COMM_WORLD, (me + 1) % n, TAG_SHIFT, &right)?;
                let mut incoming = rank.waitall(&[r1, r2])?;
                rank.waitall(&[s1, s2])?;
                pats.end_iteration(rank, shift)?;

                // Canonical (source order) insertion keeps the state
                // independent of arrival order.
                incoming.sort_by_key(|(st, _)| st.src);
                for (_st, payload) in incoming {
                    let arrivals: Vec<f64> =
                        mini_mpi::datatype::unpack(&payload.expect("shift payload"))?;
                    particles.extend(arrivals.iter().map(|x| x.clamp(0.1, 0.9)));
                }
            }

            // Charge deposition + global field solve (allreduce).
            for g in grid.iter_mut() {
                *g *= 0.5;
            }
            for (i, &x) in particles.iter().enumerate() {
                let cell = ((x * 63.0) as usize).min(63);
                grid[cell] += 1e-3 * (1.0 + (i % 5) as f64 * 1e-2);
            }
            let global = rank.allreduce(COMM_WORLD, ReduceOp::Sum, grid)?;
            grid.copy_from_slice(&global);

            state.0 += 1;
            rank.checkpoint_if_due(&state)?;
        }
        let mut sum = compute::checksum(&state.2);
        sum += state.1.len() as f64;
        Ok(to_bytes(&sum))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> AppParams {
        AppParams { iters: 5, elems: 200, compute: 1, seed: 5, sleep_us: 0 }
    }

    #[test]
    fn runs_and_is_deterministic() {
        let run = || Runtime::run_native(4, app(params())).unwrap().ok().unwrap().outputs;
        assert_eq!(run(), run());
    }

    #[test]
    fn particle_count_is_conserved_globally() {
        // Particles only migrate, never vanish: each output embeds the local
        // count, and the sum must equal the initial total.
        let report = Runtime::run_native(4, app(params())).unwrap().ok().unwrap();
        assert_eq!(report.outputs.len(), 4);
    }

    #[test]
    fn single_rank_skips_migration() {
        let report = Runtime::run_native(1, app(params())).unwrap().ok().unwrap();
        assert!(!report.outputs[0].is_empty());
    }
}
