//! # spbc-trace
//!
//! Instrumentation consumers: determinism checkers (validating the paper's
//! channel-determinism claims, §5.1) and IPM-style communication profiles
//! (the tool the paper uses to explain recovery behavior, §6.4).

#![warn(missing_docs)]

pub mod chrome;
pub mod determinism;
pub mod events;
pub mod ipm;
pub mod json;

pub use chrome::chrome_trace;
pub use determinism::{check, CheckOpts, DeterminismReport};
pub use events::Timeline;
pub use ipm::{comm_matrix, totals, IpmProfile};
pub use json::{Json, JsonObj};
