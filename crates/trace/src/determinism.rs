//! Channel- and send-determinism checkers (Definitions 1 and 2 of the
//! paper).
//!
//! Method: run the application several times under scheduling perturbation
//! (random delays injected before transmissions shake up message
//! interleavings) and compare the send-sequence witnesses collected by the
//! runtime:
//!
//! * per-channel chains equal across runs  ⇒ channel-deterministic;
//! * per-process chains equal across runs  ⇒ send-deterministic.
//!
//! Being a testing method it can only *refute* determinism, never prove it —
//! but that is exactly how the paper's authors classified applications too
//! (by inspection and observation). The AMG skeleton demonstrates the
//! interesting case: channel-deterministic but **not** send-deterministic
//! (§5.1).

use mini_mpi::config::{Perturb, RuntimeConfig};
use mini_mpi::error::Result;
use mini_mpi::stats::RankStats;
use mini_mpi::{AppFn, Runtime};
use std::sync::Arc;

/// Result of a determinism check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeterminismReport {
    /// No per-channel send-sequence difference was observed.
    pub channel_deterministic: bool,
    /// No per-process send-order difference was observed.
    pub send_deterministic: bool,
    /// Number of perturbed executions compared.
    pub runs: usize,
}

/// Options for the checker.
#[derive(Clone, Debug)]
pub struct CheckOpts {
    /// Number of perturbed runs to compare against the reference.
    pub runs: usize,
    /// Maximum injected delay, microseconds.
    pub max_delay_us: u64,
    /// Per-transmission delay probability.
    pub probability: f64,
    /// Deadlock timeout for the runs.
    pub timeout: std::time::Duration,
}

impl Default for CheckOpts {
    fn default() -> Self {
        CheckOpts {
            runs: 3,
            // Delays must dominate thread-scheduling noise (single-core
            // machines start rank threads almost sequentially), so they are
            // milliseconds-scale.
            max_delay_us: 2_000,
            probability: 0.6,
            timeout: std::time::Duration::from_secs(60),
        }
    }
}

fn run_once(world: usize, app: &Arc<AppFn>, seed: u64, opts: &CheckOpts) -> Result<Vec<RankStats>> {
    let cfg = RuntimeConfig::new(world).with_deadlock_timeout(opts.timeout).with_perturb(Perturb {
        max_delay_us: opts.max_delay_us,
        probability: opts.probability,
        seed,
    });
    let report = Runtime::builder(cfg).app(Arc::clone(app)).launch()?.ok()?;
    Ok(report.stats)
}

/// Compare `runs + 1` perturbed executions of `app`.
pub fn check(world: usize, app: Arc<AppFn>, opts: &CheckOpts) -> Result<DeterminismReport> {
    let reference = run_once(world, &app, 0xACE1, opts)?;
    let mut channel_ok = true;
    let mut send_ok = true;
    for run in 0..opts.runs {
        let sample = run_once(world, &app, 0xBEEF + run as u64 * 7919, opts)?;
        for (a, b) in reference.iter().zip(&sample) {
            if a.channel_chains != b.channel_chains {
                channel_ok = false;
            }
            if a.process_chain != b.process_chain {
                send_ok = false;
            }
        }
        if !channel_ok && !send_ok {
            break;
        }
    }
    // A send-sequence difference on some channel implies both are violated;
    // keep the implication explicit.
    if !channel_ok {
        send_ok = false;
    }
    Ok(DeterminismReport {
        channel_deterministic: channel_ok,
        send_deterministic: send_ok,
        runs: opts.runs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_mpi::prelude::*;
    use mini_mpi::wire::to_bytes;

    #[test]
    fn deterministic_ring_passes_both() {
        let app: Arc<AppFn> = Arc::new(|rank: &mut Rank| {
            let me = rank.world_rank();
            let n = rank.world_size();
            rank.send(COMM_WORLD, (me + 1) % n, 1, &[me as f64])?;
            let (v, _) = rank.recv::<f64>(COMM_WORLD, ((me + n - 1) % n) as u32, 1)?;
            Ok(to_bytes(&v[0]))
        });
        let rep = check(4, app, &CheckOpts { runs: 2, ..Default::default() }).unwrap();
        assert!(rep.channel_deterministic);
        assert!(rep.send_deterministic);
    }

    #[test]
    fn arrival_dependent_sends_violate_send_determinism() {
        // Rank 0 replies to whoever arrives first: per-channel content is
        // fixed, per-process send order is not (the AMG situation).
        let app: Arc<AppFn> = Arc::new(|rank: &mut Rank| {
            match rank.world_rank() {
                0 => {
                    for _ in 0..2 {
                        let (_v, st) = rank.recv::<f64>(COMM_WORLD, Source::Any, 1)?;
                        rank.send(COMM_WORLD, st.src.idx(), 2, &[st.src.0 as f64])?;
                    }
                }
                me => {
                    rank.send(COMM_WORLD, 0, 1, &[me as f64])?;
                    let _ = rank.recv::<f64>(COMM_WORLD, 0u32, 2)?;
                }
            }
            Ok(vec![])
        });
        let rep = check(
            3,
            app,
            &CheckOpts { runs: 8, max_delay_us: 4_000, probability: 1.0, ..Default::default() },
        )
        .unwrap();
        assert!(rep.channel_deterministic, "per-channel sequences are fixed");
        assert!(!rep.send_deterministic, "reply order must vary across runs");
    }

    #[test]
    fn content_depending_on_arrival_order_violates_channel_determinism() {
        // Rank 0 accumulates in arrival order and sends the (ordering-
        // sensitive) result onward: not even channel-deterministic.
        let app: Arc<AppFn> = Arc::new(|rank: &mut Rank| {
            match rank.world_rank() {
                0 => {
                    let mut acc = 1.0f64;
                    for k in 0..2 {
                        let (v, _st) = rank.recv::<f64>(COMM_WORLD, Source::Any, 1)?;
                        acc = acc * 3.0 + v[0] * (k + 1) as f64;
                    }
                    rank.send(COMM_WORLD, 1, 2, &[acc])?;
                }
                1 => {
                    rank.send(COMM_WORLD, 0, 1, &[2.0])?;
                    let _ = rank.recv::<f64>(COMM_WORLD, 0u32, 2)?;
                }
                _ => {
                    rank.send(COMM_WORLD, 0, 1, &[5.0])?;
                }
            }
            Ok(vec![])
        });
        let rep = check(
            3,
            app,
            &CheckOpts { runs: 8, max_delay_us: 4_000, probability: 1.0, ..Default::default() },
        )
        .unwrap();
        assert!(!rep.channel_deterministic);
        assert!(!rep.send_deterministic, "channel violation implies send violation");
    }
}
