//! Chrome trace-event exporter for flight-recorder logs.
//!
//! Converts a [`FlightLog`] into the Chrome trace-event JSON format (the
//! `{"traceEvents":[...]}` object form), loadable in Perfetto or
//! `chrome://tracing`. Each rank is a named thread track (`tid` = rank);
//! checkpoint rounds are synchronous duration spans (`ph` `B`/`E`), while
//! replay windows, asynchronous checkpoint writes, and replication
//! push→ack exchanges are async spans (`ph` `b`/`e`, one id per logical
//! flow, so overlapping flows don't fight over the thread stack), and every
//! other protocol event is a thread-scoped instant (`ph` `i`) carrying its
//! fields as `args`. The write/replication spans make the storage overlap
//! visible: a `ckpt-write` span stretching past the `ckpt` round is exactly
//! the disk latency the async writer hid from the commit barrier.

use crate::json::escape;
use mini_mpi::recorder::{CkptPhase, Event, FlightLog, RankTrace, TimedEvent, WritePhase};

/// One emitted trace-event line.
struct Emit {
    t_us: u64,
    body: String,
}

/// Render `log` as Chrome trace-event JSON.
pub fn chrome_trace(log: &FlightLog) -> String {
    let mut events: Vec<Emit> = Vec::new();
    for trace in log {
        emit_rank(trace, &mut events);
    }
    // Chrome sorts by ts, but emitting sorted keeps diffs and tests stable.
    events.sort_by_key(|e| e.t_us);
    let body: Vec<String> = events.into_iter().map(|e| e.body).collect();
    format!("{{\"traceEvents\":[{}],\"displayTimeUnit\":\"ms\"}}", body.join(","))
}

fn emit_rank(trace: &RankTrace, out: &mut Vec<Emit>) {
    let tid = trace.rank;
    // Pre-scan the whole event list for per-epoch phase latencies so they
    // can ride as args on the wave's `ckpt-write` span even though most
    // phases (replicate, commit-barrier) finish *after* that span opens.
    // BTreeMaps keep the rendered arg order deterministic; a re-committed
    // epoch overwrites, keeping the newest sample.
    let mut phase_us: std::collections::BTreeMap<u64, std::collections::BTreeMap<&str, u64>> =
        std::collections::BTreeMap::new();
    for ev in &trace.events {
        if let Event::CkptPhaseDone { epoch, phase, us } = &ev.event {
            phase_us.entry(*epoch).or_default().insert(phase, *us);
        }
    }
    out.push(Emit {
        t_us: 0,
        body: format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":{tid},\"args\":{{\"name\":{}}}}}",
            escape(&format!("rank {tid}"))
        ),
    });

    // Open synchronous span (checkpoint round), if any: (name, begin ts).
    let mut open_ckpt: Option<String> = None;
    // Open async spans (replay windows, checkpoint writes, replication
    // exchanges): (id, name, cat) tuples still awaiting their end.
    let mut open_async: Vec<(String, String, &'static str)> = Vec::new();
    let mut last_ts = 0u64;

    for ev in &trace.events {
        last_ts = last_ts.max(ev.t_us);
        match &ev.event {
            Event::Ckpt { epoch, phase } => {
                let name = format!("ckpt e{epoch}");
                match phase {
                    CkptPhase::Init => {
                        // A re-entered round (previous one never resumed)
                        // must close the stale span first — `B` events on one
                        // tid form a stack.
                        if open_ckpt.take().is_some() {
                            out.push(end_sync(tid, ev.t_us));
                        }
                        open_ckpt = Some(name.clone());
                        out.push(begin_sync(tid, ev.t_us, &name, "ckpt"));
                    }
                    CkptPhase::Resume => {
                        if open_ckpt.take().is_some() {
                            out.push(end_sync(tid, ev.t_us));
                        }
                        out.push(instant(tid, ev, "ckpt-resume", "ckpt"));
                    }
                    CkptPhase::Written | CkptPhase::Ack => {
                        out.push(instant(
                            tid,
                            ev,
                            if *phase == CkptPhase::Written { "ckpt-written" } else { "ckpt-ack" },
                            "ckpt",
                        ));
                    }
                }
            }
            Event::ReplayQueued { dst, .. } => {
                let id = format!("replay r{tid}->r{dst}");
                let name = format!("replay->r{dst}");
                // A fresh Rollback supersedes the active window for the same
                // destination: close it before opening the new one.
                open_span(&mut open_async, out, tid, ev.t_us, id, name, "replay");
                out.push(instant(tid, ev, "replay-queued", "replay"));
            }
            Event::ReplayDrained { dst } => {
                let id = format!("replay r{tid}->r{dst}");
                close_span(&mut open_async, out, tid, ev.t_us, &id);
                out.push(instant(tid, ev, "replay-drained", "replay"));
            }
            Event::CkptWrite { epoch, bytes, logical, phase } => {
                // One write in flight per rank: the double-buffered writer
                // holds at most one queued + one running job, and a second
                // Submitted before Completed means coalescing replaced the
                // older job (the superseding open_span closes its span).
                let id = format!("ckpt-write r{tid}");
                match phase {
                    WritePhase::Submitted => {
                        let name = format!("ckpt-write e{epoch}");
                        // Dedup accounting on the span itself: bytes written
                        // vs full-write equivalent.
                        let dedup = if *bytes > 0 { *logical as f64 / *bytes as f64 } else { 1.0 };
                        let mut args = format!(
                            "{{\"physical\":{bytes},\"logical\":{logical},\"dedup\":{dedup:.2}"
                        );
                        if let Some(phases) = phase_us.get(epoch) {
                            for (phase, us) in phases {
                                args.push_str(&format!(",\"{phase}_us\":{us}"));
                            }
                        }
                        args.push('}');
                        open_span_with_args(
                            &mut open_async,
                            out,
                            tid,
                            ev.t_us,
                            id,
                            name,
                            "ckptstore",
                            Some(&args),
                        );
                        out.push(instant(tid, ev, "ckpt-write-submit", "ckptstore"));
                    }
                    WritePhase::Completed => {
                        close_span(&mut open_async, out, tid, ev.t_us, &id);
                        out.push(instant(tid, ev, "ckpt-write-done", "ckptstore"));
                    }
                }
            }
            Event::CkptReplPush { partner, .. } => {
                // Push→ack flow per partner; a retry re-push supersedes the
                // unacked span for that partner.
                let id = format!("repl r{tid}->r{partner}");
                let name = format!("repl->r{partner}");
                open_span(&mut open_async, out, tid, ev.t_us, id, name, "ckptstore");
                out.push(instant(tid, ev, "repl-push", "ckptstore"));
            }
            Event::CkptReplAck { partner, .. } => {
                let id = format!("repl r{tid}->r{partner}");
                close_span(&mut open_async, out, tid, ev.t_us, &id);
                out.push(instant(tid, ev, "repl-ack", "ckptstore"));
            }
            other => {
                let (name, cat) = classify(other);
                out.push(instant(tid, ev, name, cat));
            }
        }
    }

    // Balance: close anything still open at the trace's end.
    let close_ts = last_ts + 1;
    if open_ckpt.take().is_some() {
        out.push(end_sync(tid, close_ts));
    }
    for (id, name, cat) in open_async {
        out.push(end_async(tid, close_ts, &id, &name, cat));
    }
}

/// Open async span bookkeeping: (id, name, category).
type OpenAsync = Vec<(String, String, &'static str)>;

/// Begin an async span, superseding any still-open span with the same id (a
/// re-queued replay window, a coalesced write, a re-pushed replica) — Chrome
/// requires `b`/`e` balance per id.
fn open_span(
    open: &mut OpenAsync,
    out: &mut Vec<Emit>,
    tid: u32,
    ts: u64,
    id: String,
    name: String,
    cat: &'static str,
) {
    open_span_with_args(open, out, tid, ts, id, name, cat, None);
}

/// [`open_span`] with an optional pre-rendered JSON `args` object attached
/// to the begin event (e.g. the ckpt-write span's dedup accounting).
#[allow(clippy::too_many_arguments)]
fn open_span_with_args(
    open: &mut OpenAsync,
    out: &mut Vec<Emit>,
    tid: u32,
    ts: u64,
    id: String,
    name: String,
    cat: &'static str,
    args: Option<&str>,
) {
    close_span(open, out, tid, ts, &id);
    out.push(begin_async(tid, ts, &id, &name, cat, args));
    open.push((id, name, cat));
}

/// Close the async span with `id`, if one is open.
fn close_span(open: &mut OpenAsync, out: &mut Vec<Emit>, tid: u32, ts: u64, id: &str) {
    if let Some(i) = open.iter().position(|(oid, _, _)| oid == id) {
        let (oid, oname, ocat) = open.remove(i);
        out.push(end_async(tid, ts, &oid, &oname, ocat));
    }
}

fn begin_sync(tid: u32, ts: u64, name: &str, cat: &str) -> Emit {
    Emit {
        t_us: ts,
        body: format!(
            "{{\"ph\":\"B\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"name\":{},\"cat\":{}}}",
            escape(name),
            escape(cat)
        ),
    }
}

fn end_sync(tid: u32, ts: u64) -> Emit {
    Emit { t_us: ts, body: format!("{{\"ph\":\"E\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}}}") }
}

fn begin_async(tid: u32, ts: u64, id: &str, name: &str, cat: &str, args: Option<&str>) -> Emit {
    let args = args.map(|a| format!(",\"args\":{a}")).unwrap_or_default();
    Emit {
        t_us: ts,
        body: format!(
            "{{\"ph\":\"b\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"id\":{},\"name\":{},\"cat\":{}{args}}}",
            escape(id),
            escape(name),
            escape(cat)
        ),
    }
}

fn end_async(tid: u32, ts: u64, id: &str, name: &str, cat: &str) -> Emit {
    Emit {
        t_us: ts,
        body: format!(
            "{{\"ph\":\"e\",\"pid\":0,\"tid\":{tid},\"ts\":{ts},\"id\":{},\"name\":{},\"cat\":{}}}",
            escape(id),
            escape(name),
            escape(cat)
        ),
    }
}

fn instant(tid: u32, ev: &TimedEvent, name: &str, cat: &str) -> Emit {
    Emit {
        t_us: ev.t_us,
        body: format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"name\":{},\"cat\":{},\"args\":{{\"seq\":{},\"detail\":{}}}}}",
            ev.t_us,
            escape(name),
            escape(cat),
            ev.seq,
            escape(&ev.event.to_string())
        ),
    }
}

/// Instant-event name and category for the remaining event kinds.
fn classify(ev: &Event) -> (&'static str, &'static str) {
    match ev {
        Event::RankStart { .. } => ("rank-start", "lifecycle"),
        Event::RankDone => ("rank-done", "lifecycle"),
        Event::RankKilled => ("rank-killed", "lifecycle"),
        Event::RankError => ("rank-error", "lifecycle"),
        Event::Send { suppressed: true, .. } => ("send-suppressed", "msg"),
        Event::Send { .. } => ("send", "msg"),
        Event::Arrival { .. } => ("arrival", "msg"),
        Event::CtrlSent { .. } => ("ctrl-sent", "ctrl"),
        Event::CtrlRecv { .. } => ("ctrl-recv", "ctrl"),
        Event::LogAppend { .. } => ("log-append", "log"),
        Event::LogTruncate { .. } => ("log-truncate", "log"),
        Event::Rollback { .. } => ("rollback", "recovery"),
        Event::RollbackRecv { .. } => ("rollback-recv", "recovery"),
        Event::LsSet { .. } => ("ls-set", "recovery"),
        Event::Replay { .. } => ("replay-msg", "replay"),
        Event::Stall { .. } => ("stall", "watchdog"),
        Event::CkptReplStore { .. } => ("repl-store", "ckptstore"),
        Event::CkptRepair { .. } => ("ckpt-repair", "ckptstore"),
        Event::CkptRebuild { .. } => ("ckpt-rebuild", "ckptstore"),
        Event::CkptGc { .. } => ("ckpt-gc", "ckptstore"),
        Event::CkptPhaseDone { .. } => ("ckpt-phase", "ckpt"),
        // Span-forming kinds are handled by the caller; keep a fallback so
        // the match stays exhaustive.
        Event::Ckpt { .. }
        | Event::ReplayQueued { .. }
        | Event::ReplayDrained { .. }
        | Event::CkptWrite { .. }
        | Event::CkptReplPush { .. }
        | Event::CkptReplAck { .. } => ("event", "misc"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Json};
    use mini_mpi::recorder::{Disposition, RankTrace};
    use mini_mpi::types::RankId;
    use std::collections::HashMap;

    fn te(t_us: u64, seq: u64, event: Event) -> TimedEvent {
        TimedEvent { t_us, seq, event }
    }

    /// A synthetic two-rank timeline exercising every span kind: a complete
    /// checkpoint round, an interrupted one, a drained replay window and a
    /// superseded one, an async checkpoint write overlapping the resume, and
    /// a replication push→ack exchange (one acked, one left hanging).
    fn synthetic_log() -> FlightLog {
        vec![
            RankTrace {
                rank: 0,
                dropped: 0,
                status: None,
                events: vec![
                    te(1, 0, Event::RankStart { epoch: 0 }),
                    te(
                        5,
                        1,
                        Event::Send {
                            dst: RankId(1),
                            comm: 0,
                            tag: 3,
                            seqnum: 1,
                            bytes: 64,
                            suppressed: false,
                        },
                    ),
                    te(6, 2, Event::LogAppend { dst: RankId(1), comm: 0, seqnum: 1, bytes: 64 }),
                    te(10, 3, Event::Ckpt { epoch: 1, phase: CkptPhase::Init }),
                    te(12, 19, Event::CkptPhaseDone { epoch: 1, phase: "encode", us: 7 }),
                    te(
                        13,
                        14,
                        Event::CkptWrite {
                            epoch: 1,
                            bytes: 32,
                            logical: 96,
                            phase: WritePhase::Submitted,
                        },
                    ),
                    te(14, 4, Event::Ckpt { epoch: 1, phase: CkptPhase::Written }),
                    te(14, 15, Event::CkptReplPush { partner: RankId(1), epoch: 1, bytes: 96 }),
                    te(16, 16, Event::CkptReplAck { partner: RankId(1), epoch: 1 }),
                    te(15, 5, Event::Ckpt { epoch: 1, phase: CkptPhase::Ack }),
                    te(20, 6, Event::Ckpt { epoch: 1, phase: CkptPhase::Resume }),
                    // Recorded *after* the write span opened: the pre-scan
                    // must still attach it to the e1 span args.
                    te(21, 20, Event::CkptPhaseDone { epoch: 1, phase: "commit_barrier", us: 5 }),
                    // The background write outlives the checkpoint round —
                    // the hidden-latency overlap the trace must show.
                    te(
                        25,
                        17,
                        Event::CkptWrite {
                            epoch: 1,
                            bytes: 32,
                            logical: 96,
                            phase: WritePhase::Completed,
                        },
                    ),
                    te(26, 18, Event::CkptGc { pruned: 1, keep_from: 1 }),
                    te(30, 7, Event::ReplayQueued { dst: RankId(1), msgs: 2 }),
                    te(31, 8, Event::Replay { dst: RankId(1), comm: 0, seqnum: 1 }),
                    te(32, 9, Event::Replay { dst: RankId(1), comm: 0, seqnum: 2 }),
                    te(33, 10, Event::ReplayDrained { dst: RankId(1) }),
                    // Superseded window: re-queued, never drained.
                    te(40, 11, Event::ReplayQueued { dst: RankId(1), msgs: 1 }),
                    te(41, 12, Event::ReplayQueued { dst: RankId(1), msgs: 3 }),
                    te(50, 13, Event::RankDone),
                ],
            },
            RankTrace {
                rank: 1,
                dropped: 2,
                status: Some((60, "stuck in wait".into())),
                events: vec![
                    te(2, 2, Event::RankStart { epoch: 1 }),
                    te(3, 3, Event::Rollback { epoch: 1, restored_ckpt: 1 }),
                    te(4, 7, Event::CkptRepair { epoch: 1, from: RankId(0) }),
                    te(
                        7,
                        4,
                        Event::Arrival {
                            src: RankId(0),
                            comm: 0,
                            tag: 3,
                            seqnum: 1,
                            disposition: Disposition::Matched,
                        },
                    ),
                    te(15, 8, Event::CkptReplStore { owner: RankId(0), epoch: 1, bytes: 96 }),
                    // Interrupted checkpoint: Init with no Resume, and a
                    // replica push the dead partner never acked.
                    te(45, 5, Event::Ckpt { epoch: 2, phase: CkptPhase::Init }),
                    te(46, 9, Event::CkptReplPush { partner: RankId(0), epoch: 2, bytes: 96 }),
                    te(58, 6, Event::Stall { what: "wait".into() }),
                ],
            },
        ]
    }

    fn trace_events(doc: &Json) -> &[Json] {
        doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array")
    }

    #[test]
    fn exporter_emits_valid_json() {
        let out = chrome_trace(&synthetic_log());
        let doc = parse(&out).expect("exporter output must parse");
        let evs = trace_events(&doc);
        assert!(!evs.is_empty());
        for e in evs {
            assert!(e.get("ph").is_some(), "every event has a phase: {e:?}");
        }
        // Both ranks have named tracks.
        let names: Vec<&str> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| e.get("args")?.get("name")?.as_str())
            .collect();
        assert_eq!(names, vec!["rank 0", "rank 1"]);
    }

    #[test]
    fn spans_are_balanced() {
        let out = chrome_trace(&synthetic_log());
        let doc = parse(&out).unwrap();
        // Synchronous B/E: per tid, stack discipline — depth never negative,
        // zero at the end.
        let mut depth: HashMap<u64, i64> = HashMap::new();
        // Async b/e: per id, open exactly balances close.
        let mut async_open: HashMap<String, i64> = HashMap::new();
        for e in trace_events(&doc) {
            let ph = e.get("ph").and_then(Json::as_str).unwrap();
            match ph {
                "B" => {
                    let tid = e.get("tid").and_then(Json::as_num).unwrap() as u64;
                    *depth.entry(tid).or_default() += 1;
                }
                "E" => {
                    let tid = e.get("tid").and_then(Json::as_num).unwrap() as u64;
                    let d = depth.entry(tid).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "E without matching B on tid {tid}");
                }
                "b" => {
                    let id = e.get("id").and_then(Json::as_str).unwrap().to_string();
                    *async_open.entry(id).or_default() += 1;
                }
                "e" => {
                    let id = e.get("id").and_then(Json::as_str).unwrap().to_string();
                    let d = async_open.entry(id.clone()).or_default();
                    *d -= 1;
                    assert!(*d >= 0, "async end without begin for {id}");
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "unbalanced B/E: {depth:?}");
        assert!(async_open.values().all(|&d| d == 0), "unbalanced b/e: {async_open:?}");
    }

    #[test]
    fn timestamps_are_sorted_and_spans_named() {
        let out = chrome_trace(&synthetic_log());
        let doc = parse(&out).unwrap();
        let evs = trace_events(&doc);
        let ts: Vec<f64> = evs.iter().filter_map(|e| e.get("ts")?.as_num()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "events sorted by ts");
        let span_names: Vec<&str> = evs
            .iter()
            .filter(|e| matches!(e.get("ph").and_then(Json::as_str), Some("B" | "b")))
            .filter_map(|e| e.get("name")?.as_str())
            .collect();
        assert!(span_names.contains(&"ckpt e1"), "{span_names:?}");
        assert!(span_names.contains(&"ckpt e2"), "interrupted round still opens");
        assert!(span_names.contains(&"replay->r1"), "{span_names:?}");
        assert!(span_names.contains(&"ckpt-write e1"), "{span_names:?}");
        assert!(span_names.contains(&"repl->r1"), "{span_names:?}");
        assert!(span_names.contains(&"repl->r0"), "unacked push still opens");
    }

    #[test]
    fn ckpt_write_span_carries_dedup_args() {
        let out = chrome_trace(&synthetic_log());
        let doc = parse(&out).unwrap();
        let span = trace_events(&doc)
            .iter()
            .find(|e| {
                e.get("ph").and_then(Json::as_str) == Some("b")
                    && e.get("name").and_then(Json::as_str) == Some("ckpt-write e1")
            })
            .expect("ckpt-write span present");
        let args = span.get("args").expect("span has args");
        assert_eq!(args.get("physical").and_then(Json::as_num), Some(32.0));
        assert_eq!(args.get("logical").and_then(Json::as_num), Some(96.0));
        assert_eq!(args.get("dedup").and_then(Json::as_num), Some(3.0));
        // Phase latencies ride on the same span — including the commit
        // barrier, which completed after the span opened.
        assert_eq!(args.get("encode_us").and_then(Json::as_num), Some(7.0));
        assert_eq!(args.get("commit_barrier_us").and_then(Json::as_num), Some(5.0));
    }

    #[test]
    fn empty_log_is_still_valid() {
        let out = chrome_trace(&Vec::new());
        let doc = parse(&out).unwrap();
        assert_eq!(trace_events(&doc).len(), 0);
    }
}
