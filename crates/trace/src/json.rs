//! A minimal JSON writer and parser.
//!
//! The container has no serde; the Chrome-trace exporter needs to *emit*
//! JSON and its tests need to *parse* it back to prove the output is valid.
//! This module is that round-trip: a string escaper, a value tree, and a
//! recursive-descent parser covering the full JSON grammar (enough for trace
//! files and metrics lines — numbers are `f64`, like JavaScript's).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap) — irrelevant for JSON
    /// semantics, convenient for deterministic tests.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Escape `s` into a JSON string literal (with quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a complete JSON document. Trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.peek().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad number")?;
        s.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number '{s}'"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.skip_ws();
            v.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// An incremental JSON *object* writer: append fields in call order, then
/// [`finish`](JsonObj::finish) into a `String`.
///
/// This replaces the hand-spliced `format!("{{...}},{}", &json[1..])`
/// surgery that used to stitch metrics lines together: every field goes
/// through one escaper and one comma rule, so the output always parses.
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Start an empty object.
    pub fn new() -> Self {
        Self { buf: String::from("{") }
    }

    fn key(&mut self, k: &str) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
        self.buf.push_str(&escape(k));
        self.buf.push(':');
    }

    /// Append an unsigned-integer field.
    pub fn field(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Append a float field (non-finite values become `null`).
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            let _ = write!(self.buf, "{v}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Append a string field (escaped).
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(&escape(v));
        self
    }

    /// Append a field whose value is already-rendered JSON (an object or
    /// array built elsewhere). The caller guarantees `raw` is valid.
    pub fn field_raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    /// Append an array-of-integers field.
    pub fn field_arr_u64(&mut self, k: &str, vals: &[u64]) -> &mut Self {
        self.key(k);
        self.buf.push('[');
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Close the object and return the rendered JSON.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a":[1,2.5,-3e2],"b":{"s":"x\ny","t":true,"n":null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_num(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("s").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("t"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("n"), Some(&Json::Null));
    }

    #[test]
    fn escape_round_trips() {
        let nasty = "quote\" back\\slash \nnewline \ttab \u{1} unicode ✓";
        let lit = escape(nasty);
        assert_eq!(parse(&lit).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn obj_builder_emits_valid_json() {
        let mut inner = JsonObj::new();
        inner.field_arr_u64("buckets", &[1, 0, 3]);
        let mut obj = JsonObj::new();
        obj.field_str("label", "a \"quoted\" label")
            .field("count", 42)
            .field_f64("ratio", 1.5)
            .field_f64("nan", f64::NAN)
            .field_raw("nested", &inner.finish());
        let v = parse(&obj.finish()).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("a \"quoted\" label"));
        assert_eq!(v.get("count").unwrap().as_num(), Some(42.0));
        assert_eq!(v.get("ratio").unwrap().as_num(), Some(1.5));
        assert_eq!(v.get("nan"), Some(&Json::Null));
        let buckets = v.get("nested").unwrap().get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[2].as_num(), Some(3.0));
    }

    #[test]
    fn empty_obj_is_valid() {
        assert_eq!(JsonObj::new().finish(), "{}");
        assert_eq!(parse(&JsonObj::new().finish()).unwrap(), Json::Obj(Default::default()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
