//! IPM-style profiles: where does the time go? (The paper uses the IPM
//! profiling tool to explain the recovery results, §6.4.)

use mini_mpi::stats::RankStats;
use std::time::Duration;

/// Communication/computation profile of one run.
#[derive(Clone, Debug, Default)]
pub struct IpmProfile {
    /// Per-rank fraction of time spent in blocking communication.
    pub comm_ratio: Vec<f64>,
    /// Mean communication ratio.
    pub avg_comm_ratio: f64,
    /// Largest per-rank communication ratio.
    pub max_comm_ratio: f64,
    /// Total wall time across ranks.
    pub total_time: Duration,
    /// Total time in communication across ranks.
    pub comm_time: Duration,
}

impl IpmProfile {
    /// Build from the per-rank statistics of a run.
    pub fn from_stats(stats: &[RankStats]) -> Self {
        let comm_ratio: Vec<f64> = stats.iter().map(RankStats::comm_ratio).collect();
        let avg = if comm_ratio.is_empty() {
            0.0
        } else {
            comm_ratio.iter().sum::<f64>() / comm_ratio.len() as f64
        };
        let max = comm_ratio.iter().copied().fold(0.0, f64::max);
        IpmProfile {
            avg_comm_ratio: avg,
            max_comm_ratio: max,
            total_time: stats.iter().map(|s| s.total_time).sum(),
            comm_time: stats.iter().map(|s| s.comm_time).sum(),
            comm_ratio,
        }
    }

    /// Communication-bound? (the paper's AMG threshold: >50 %).
    pub fn is_comm_bound(&self) -> bool {
        self.avg_comm_ratio > 0.5
    }
}

/// Extract the directed byte matrix from per-rank statistics — the input of
/// the clustering tool.
pub fn comm_matrix(stats: &[RankStats]) -> Vec<Vec<u64>> {
    stats.iter().map(|s| s.sent_bytes.clone()).collect()
}

/// Aggregate totals across ranks: `(messages, bytes)`.
pub fn totals(stats: &[RankStats]) -> (u64, u64) {
    (
        stats.iter().map(RankStats::total_sent_msgs).sum(),
        stats.iter().map(RankStats::total_sent_bytes).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_mpi::types::RankId;

    fn stats_with(comm_ms: u64, total_ms: u64) -> RankStats {
        let mut s = RankStats::new(RankId(0), 2);
        s.comm_time = Duration::from_millis(comm_ms);
        s.total_time = Duration::from_millis(total_ms);
        s
    }

    #[test]
    fn profile_ratios() {
        let stats = vec![stats_with(10, 100), stats_with(60, 100)];
        let p = IpmProfile::from_stats(&stats);
        assert!((p.comm_ratio[0] - 0.1).abs() < 1e-9);
        assert!((p.avg_comm_ratio - 0.35).abs() < 1e-9);
        assert!((p.max_comm_ratio - 0.6).abs() < 1e-9);
        assert!(!p.is_comm_bound());
        let heavy = vec![stats_with(80, 100)];
        assert!(IpmProfile::from_stats(&heavy).is_comm_bound());
    }

    #[test]
    fn matrix_and_totals() {
        let mut a = RankStats::new(RankId(0), 2);
        a.sent_bytes = vec![0, 30];
        a.sent_msgs = vec![0, 3];
        let b = RankStats::new(RankId(1), 2);
        let m = comm_matrix(&[a.clone(), b.clone()]);
        assert_eq!(m, vec![vec![0, 30], vec![0, 0]]);
        assert_eq!(totals(&[a, b]), (3, 30));
    }

    #[test]
    fn empty_profile_is_sane() {
        let p = IpmProfile::from_stats(&[]);
        assert_eq!(p.avg_comm_ratio, 0.0);
        assert!(!p.is_comm_bound());
    }
}
