//! A lightweight communication-event timeline.
//!
//! The determinism checkers compare *hashes* of send sequences; when they
//! report a violation it is useful to see the actual per-channel sequences.
//! `Timeline` reconstructs orderings from rank statistics and supports simple
//! structural queries (who talks to whom, heaviest channels, send
//! histograms) used by the clustering explorer and by debugging sessions.

use mini_mpi::stats::RankStats;
use mini_mpi::types::{ChannelId, RankId};
use std::collections::HashMap;

/// Aggregated view over a run's per-rank statistics.
#[derive(Clone, Debug, Default)]
pub struct Timeline {
    /// Per-channel message counts.
    pub msgs: HashMap<ChannelId, u64>,
    /// Per-channel byte counts.
    pub bytes: HashMap<ChannelId, u64>,
    /// World size.
    pub world: usize,
}

impl Timeline {
    /// Build from the runtime's per-rank statistics.
    pub fn from_stats(stats: &[RankStats]) -> Self {
        let world = stats.len();
        let mut t = Timeline { world, ..Default::default() };
        for s in stats {
            for (chan, chain) in &s.channel_chains {
                *t.msgs.entry(*chan).or_default() += chain.count;
            }
            for (dst, &bytes) in s.sent_bytes.iter().enumerate() {
                if bytes > 0 {
                    // Attribute to the world channel; finer per-communicator
                    // byte accounting lives in channel_chains counts only.
                    let chan =
                        ChannelId::new(s.me, RankId(dst as u32), mini_mpi::types::COMM_WORLD);
                    *t.bytes.entry(chan).or_default() += bytes;
                }
            }
        }
        t
    }

    /// Channels ordered by message count, heaviest first.
    pub fn heaviest_channels(&self, top: usize) -> Vec<(ChannelId, u64)> {
        let mut v: Vec<(ChannelId, u64)> = self.msgs.iter().map(|(&c, &n)| (c, n)).collect();
        v.sort_by_key(|&(c, n)| (std::cmp::Reverse(n), c));
        v.truncate(top);
        v
    }

    /// Out-degree of a rank: how many distinct peers it sent to.
    pub fn out_degree(&self, rank: RankId) -> usize {
        let mut peers: Vec<RankId> =
            self.msgs.keys().filter(|c| c.src == rank).map(|c| c.dst).collect();
        peers.sort_unstable();
        peers.dedup();
        peers.len()
    }

    /// Total messages recorded.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.values().sum()
    }

    /// True when rank `a` and `b` exchanged any message (either direction).
    pub fn communicated(&self, a: RankId, b: RankId) -> bool {
        self.msgs.keys().any(|c| (c.src == a && c.dst == b) || (c.src == b && c.dst == a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mini_mpi::types::COMM_WORLD;

    fn stats_with_sends(me: u32, sends: &[(u32, &[u8])]) -> RankStats {
        let mut s = RankStats::new(RankId(me), 4);
        for &(dst, payload) in sends {
            s.on_send(ChannelId::new(RankId(me), RankId(dst), COMM_WORLD), 1, payload, (0, 0));
        }
        s
    }

    #[test]
    fn aggregates_counts_and_bytes() {
        let stats = vec![
            stats_with_sends(0, &[(1, b"abcd"), (1, b"ef"), (2, b"x")]),
            stats_with_sends(1, &[(0, b"yy")]),
            RankStats::new(RankId(2), 4),
            RankStats::new(RankId(3), 4),
        ];
        let t = Timeline::from_stats(&stats);
        assert_eq!(t.total_msgs(), 4);
        let c01 = ChannelId::new(RankId(0), RankId(1), COMM_WORLD);
        assert_eq!(t.msgs[&c01], 2);
        assert_eq!(t.bytes[&c01], 6);
        assert_eq!(t.out_degree(RankId(0)), 2);
        assert_eq!(t.out_degree(RankId(3)), 0);
        assert!(t.communicated(RankId(0), RankId(2)));
        assert!(!t.communicated(RankId(2), RankId(3)));
    }

    #[test]
    fn heaviest_channels_ordering() {
        let stats = vec![
            stats_with_sends(0, &[(1, b"a"), (1, b"b"), (2, b"c")]),
            stats_with_sends(1, &[(2, b"d"), (2, b"e"), (2, b"f"), (2, b"g")]),
            RankStats::new(RankId(2), 3),
        ];
        let t = Timeline::from_stats(&stats);
        let top = t.heaviest_channels(2);
        assert_eq!(top[0].0, ChannelId::new(RankId(1), RankId(2), COMM_WORLD));
        assert_eq!(top[0].1, 4);
        assert_eq!(top[1].1, 2);
    }
}
