//! Validate the paper's §5.1 determinism claims against the workload
//! skeletons, using the perturbed-execution checkers.

use spbc_apps::{AppParams, Workload};
use spbc_trace::{check, CheckOpts};

fn opts() -> CheckOpts {
    CheckOpts { runs: 3, max_delay_us: 3_000, probability: 0.8, ..Default::default() }
}

fn params() -> AppParams {
    AppParams { iters: 3, elems: 128, compute: 1, seed: 33, sleep_us: 0 }
}

#[test]
fn amg_is_channel_but_not_send_deterministic() {
    // The headline claim of §5.1: the Figure 4 pattern replies in request-
    // arrival order, which breaks the per-process total order of sends while
    // preserving every per-channel sequence.
    let rep = check(6, Workload::Amg.build(params()), &opts()).unwrap();
    assert!(rep.channel_deterministic, "AMG must stay channel-deterministic");
    assert!(!rep.send_deterministic, "AMG must not be send-deterministic");
}

#[test]
fn stencil_workloads_are_channel_deterministic() {
    for w in [Workload::MiniGhost, Workload::Cm1, Workload::MiniFe] {
        let rep = check(6, w.build(params()), &opts()).unwrap();
        assert!(rep.channel_deterministic, "{} must be channel-deterministic", w.name());
    }
}

#[test]
fn particle_and_lattice_workloads_are_channel_deterministic() {
    for w in [Workload::Gtc, Workload::Milc] {
        let rep = check(6, w.build(params()), &opts()).unwrap();
        assert!(rep.channel_deterministic, "{} must be channel-deterministic", w.name());
    }
}

#[test]
fn nas_workloads_are_send_deterministic() {
    // Named receives only: the per-process send order never varies — the
    // property HydEE requires.
    for w in Workload::NAS {
        let rep = check(4, w.build(params()), &opts()).unwrap();
        assert!(rep.send_deterministic, "{} must be send-deterministic", w.name());
    }
}
