//! Timeline reconstruction from real runs.

use mini_mpi::prelude::*;
use mini_mpi::types::RankId;
use mini_mpi::Runtime;
use spbc_apps::{AppParams, Workload};
use spbc_trace::Timeline;

fn run(w: Workload) -> Vec<mini_mpi::stats::RankStats> {
    let p = AppParams { iters: 4, elems: 128, compute: 1, seed: 9, sleep_us: 0 };
    Runtime::builder(RuntimeConfig::new(8)).app(w.build(p)).launch().unwrap().ok().unwrap().stats
}

#[test]
fn minighost_timeline_shows_stencil_structure() {
    let stats = run(Workload::MiniGhost);
    let t = Timeline::from_stats(&stats);
    assert!(t.total_msgs() > 0);
    // A 3-D stencil on 8 ranks (2x2x2): every rank talks to its 3 distinct
    // torus neighbors (±1 per axis coincide at extent 2) plus collective
    // partners.
    for r in 0..8u32 {
        assert!(t.out_degree(RankId(r)) >= 3, "rank {r}");
    }
    let top = t.heaviest_channels(5);
    assert_eq!(top.len(), 5);
    assert!(top[0].1 >= top[4].1, "ordered by weight");
}

#[test]
fn cm1_open_boundaries_visible_in_timeline() {
    let stats = run(Workload::Cm1);
    let t = Timeline::from_stats(&stats);
    // 4x2 grid: corner rank 0 has fewer halo partners than an interior one.
    // (Collectives add tree partners, so compare degrees, not exact counts.)
    let corner = t.out_degree(RankId(0));
    let interior = t.out_degree(RankId(2));
    assert!(interior >= corner, "corner={corner} interior={interior}");
}

#[test]
fn ring_communication_pairs() {
    let stats = run(Workload::Gtc);
    let t = Timeline::from_stats(&stats);
    for r in 0..8u32 {
        let next = RankId((r + 1) % 8);
        assert!(t.communicated(RankId(r), next), "ring edge {r}->{next} missing");
    }
}
