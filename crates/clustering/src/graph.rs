//! Communication graphs: who sends how many bytes to whom.

/// A directed communication-volume matrix: `traffic[i][j]` = bytes rank `i`
/// sent to rank `j` during the profiling run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommGraph {
    traffic: Vec<Vec<u64>>,
}

impl CommGraph {
    /// Build from a dense byte matrix (must be square).
    pub fn from_matrix(traffic: Vec<Vec<u64>>) -> Self {
        let n = traffic.len();
        assert!(traffic.iter().all(|row| row.len() == n), "matrix must be square");
        CommGraph { traffic }
    }

    /// An empty graph over `n` ranks.
    pub fn empty(n: usize) -> Self {
        CommGraph { traffic: vec![vec![0; n]; n] }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.traffic.len()
    }

    /// True when the graph covers no ranks.
    pub fn is_empty(&self) -> bool {
        self.traffic.is_empty()
    }

    /// Directed traffic `src -> dst` in bytes.
    pub fn traffic(&self, src: usize, dst: usize) -> u64 {
        self.traffic[src][dst]
    }

    /// Add traffic.
    pub fn add(&mut self, src: usize, dst: usize, bytes: u64) {
        self.traffic[src][dst] += bytes;
    }

    /// Symmetric affinity between two ranks (bytes in both directions) —
    /// the weight clustering works with, since a message is logged no matter
    /// which side of the cut sends it.
    pub fn affinity(&self, a: usize, b: usize) -> u64 {
        self.traffic[a][b] + self.traffic[b][a]
    }

    /// Total bytes on all channels.
    pub fn total(&self) -> u64 {
        self.traffic.iter().flatten().sum()
    }

    /// Collapse ranks into nodes of `node_size` consecutive ranks: the
    /// node-level graph clustering actually runs on (failure containment
    /// below node granularity is pointless — §6.1 of the paper).
    pub fn collapse_nodes(&self, node_size: usize) -> CommGraph {
        assert!(node_size >= 1);
        let n = self.len();
        let nodes = n.div_ceil(node_size);
        let mut out = CommGraph::empty(nodes);
        for i in 0..n {
            for j in 0..n {
                let (ni, nj) = (i / node_size, j / node_size);
                if ni != nj {
                    out.traffic[ni][nj] += self.traffic[i][j];
                }
            }
        }
        out
    }

    /// Bytes crossing the cut induced by `assignment` (the data a run with
    /// this clustering would log).
    pub fn cut_bytes(&self, assignment: &[usize]) -> u64 {
        assert_eq!(assignment.len(), self.len());
        let mut cut = 0;
        for i in 0..self.len() {
            for j in 0..self.len() {
                if assignment[i] != assignment[j] {
                    cut += self.traffic[i][j];
                }
            }
        }
        cut
    }

    /// Per-rank logged bytes under `assignment` (what each rank's memory
    /// pays — Table 1 reports avg and max of this).
    pub fn logged_per_rank(&self, assignment: &[usize]) -> Vec<u64> {
        (0..self.len())
            .map(|i| {
                (0..self.len())
                    .filter(|&j| assignment[i] != assignment[j])
                    .map(|j| self.traffic[i][j])
                    .sum()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CommGraph {
        // 0 <-> 1 heavy, 2 <-> 3 heavy, light across.
        CommGraph::from_matrix(vec![
            vec![0, 100, 1, 0],
            vec![100, 0, 0, 1],
            vec![1, 0, 0, 100],
            vec![0, 1, 100, 0],
        ])
    }

    #[test]
    fn affinity_is_symmetric() {
        let g = sample();
        assert_eq!(g.affinity(0, 1), 200);
        assert_eq!(g.affinity(1, 0), 200);
        assert_eq!(g.total(), 404);
    }

    #[test]
    fn cut_respects_assignment() {
        let g = sample();
        assert_eq!(g.cut_bytes(&[0, 0, 1, 1]), 4);
        assert_eq!(g.cut_bytes(&[0, 1, 0, 1]), 400);
        assert_eq!(g.cut_bytes(&[0, 0, 0, 0]), 0);
    }

    #[test]
    fn logged_per_rank_matches_cut() {
        let g = sample();
        let a = [0usize, 0, 1, 1];
        let per = g.logged_per_rank(&a);
        assert_eq!(per.iter().sum::<u64>(), g.cut_bytes(&a));
        assert_eq!(per, vec![1, 1, 1, 1]);
    }

    #[test]
    fn collapse_nodes_aggregates() {
        let g = sample();
        let c = g.collapse_nodes(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.traffic(0, 1), 1 + 1);
        assert_eq!(c.traffic(1, 0), 1 + 1);
        assert_eq!(c.traffic(0, 0), 0, "intra-node traffic vanishes");
    }
}
