//! # spbc-clustering
//!
//! The communication-aware clustering tool of the paper's evaluation
//! (reference [30]): given a profiled communication matrix, partition ranks
//! into `k` clusters so that the volume of inter-cluster traffic — which the
//! hierarchical protocol must log — is minimized, with all ranks of a node
//! kept together.
//!
//! Intentionally dependency-free: inputs are byte matrices, outputs are
//! per-rank cluster assignments, so the crate also serves standalone trace
//! analysis.

#![warn(missing_docs)]

pub mod graph;
pub mod partition;

pub use graph::CommGraph;
pub use partition::{partition, Objective, PartitionOpts};
