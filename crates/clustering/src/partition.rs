//! Graph partitioning minimizing logged volume — the clustering tool of the
//! paper's reference [30] (Ropars et al., Euro-Par'11).
//!
//! Pipeline:
//! 1. collapse ranks into nodes (a node never spans clusters);
//! 2. greedy growth: repeatedly seed a cluster with the currently
//!    highest-affinity unassigned node and grow it to the target size by
//!    absorbing the unassigned node with the strongest connection;
//! 3. Kernighan–Lin-style refinement: move nodes between clusters while the
//!    cut improves, under a balance constraint;
//! 4. expand back to ranks.
//!
//! Two objectives are supported: minimizing the **total** logged volume (the
//! paper's tool) and minimizing the **maximum per-node** logged volume (the
//! alternative §6.6 suggests studying — exercised by the A2 ablation bench).

use crate::graph::CommGraph;

/// What the refinement optimizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Objective {
    /// Total bytes logged (the [30] objective).
    MinTotal,
    /// Maximum bytes any single node logs (§6.6's suggestion).
    MinMax,
}

/// Partitioning options.
#[derive(Clone, Debug)]
pub struct PartitionOpts {
    /// Ranks per node (containment granularity).
    pub node_size: usize,
    /// Allowed deviation from perfectly balanced cluster sizes, in nodes.
    pub slack: usize,
    /// Refinement passes.
    pub refine_passes: usize,
    /// Objective to optimize.
    pub objective: Objective,
}

impl Default for PartitionOpts {
    fn default() -> Self {
        PartitionOpts { node_size: 1, slack: 0, refine_passes: 8, objective: Objective::MinTotal }
    }
}

/// Partition the communication graph over `k` clusters.
///
/// Returns the per-rank cluster assignment (dense indices `0..k`).
pub fn partition(graph: &CommGraph, k: usize, opts: &PartitionOpts) -> Vec<usize> {
    let ranks = graph.len();
    assert!(k >= 1, "need at least one cluster");
    let node_graph = graph.collapse_nodes(opts.node_size);
    let nodes = node_graph.len();
    assert!(k <= nodes, "more clusters ({k}) than nodes ({nodes})");

    let mut assign = greedy_growth(&node_graph, k);
    refine(&node_graph, &mut assign, k, opts);
    normalize(&mut assign, k);

    // Expand node assignment back to ranks.
    (0..ranks).map(|r| assign[r / opts.node_size]).collect()
}

/// Greedy seeded growth on the node graph.
fn greedy_growth(g: &CommGraph, k: usize) -> Vec<usize> {
    let n = g.len();
    let target = n.div_ceil(k);
    let mut assign = vec![usize::MAX; n];
    let mut unassigned = n;

    for cluster in 0..k {
        if unassigned == 0 {
            break;
        }
        // Seed: unassigned node with the largest total affinity to other
        // unassigned nodes (ties broken by index for determinism).
        let seed = (0..n)
            .filter(|&i| assign[i] == usize::MAX)
            .max_by_key(|&i| {
                let w: u64 = (0..n)
                    .filter(|&j| j != i && assign[j] == usize::MAX)
                    .map(|j| g.affinity(i, j))
                    .sum();
                (w, std::cmp::Reverse(i))
            })
            .expect("unassigned node exists");
        assign[seed] = cluster;
        unassigned -= 1;
        let mut size = 1;

        // Leave at least one seed node for every remaining cluster.
        let reserved = k - cluster - 1;
        while size < target && unassigned > reserved {
            // Absorb the unassigned node most connected to this cluster.
            let next = (0..n)
                .filter(|&i| assign[i] == usize::MAX)
                .max_by_key(|&i| {
                    let w: u64 =
                        (0..n).filter(|&j| assign[j] == cluster).map(|j| g.affinity(i, j)).sum();
                    (w, std::cmp::Reverse(i))
                })
                .expect("unassigned node exists");
            assign[next] = cluster;
            unassigned -= 1;
            size += 1;
        }
    }
    // Leftovers (k didn't divide n): attach to their best cluster, smallest
    // clusters preferred on tie.
    for i in 0..n {
        if assign[i] == usize::MAX {
            let best = (0..k)
                .max_by_key(|&c| {
                    let w: u64 = (0..n).filter(|&j| assign[j] == c).map(|j| g.affinity(i, j)).sum();
                    (w, std::cmp::Reverse(c))
                })
                .unwrap();
            assign[i] = best;
        }
    }
    assign
}

/// Objective value of an assignment on the node graph.
fn objective_value(g: &CommGraph, assign: &[usize], objective: Objective) -> u64 {
    match objective {
        Objective::MinTotal => g.cut_bytes(assign),
        Objective::MinMax => g.logged_per_rank(assign).into_iter().max().unwrap_or(0),
    }
}

/// Node-move refinement under a balance constraint.
fn refine(g: &CommGraph, assign: &mut [usize], k: usize, opts: &PartitionOpts) {
    let n = g.len();
    if n == 0 || k <= 1 {
        return;
    }
    let target = n.div_ceil(k);
    let min_size = target.saturating_sub(1 + opts.slack).max(1);
    let max_size = target + opts.slack;
    let mut sizes = vec![0usize; k];
    for &c in assign.iter() {
        sizes[c] += 1;
    }
    let mut best = objective_value(g, assign, opts.objective);

    for _ in 0..opts.refine_passes {
        let mut improved = false;
        for i in 0..n {
            let from = assign[i];
            if sizes[from] <= min_size {
                continue;
            }
            for to in 0..k {
                if to == from || sizes[to] >= max_size {
                    continue;
                }
                assign[i] = to;
                let val = objective_value(g, assign, opts.objective);
                if val < best {
                    best = val;
                    sizes[from] -= 1;
                    sizes[to] += 1;
                    improved = true;
                    break;
                }
                assign[i] = from;
            }
        }
        if !improved {
            break;
        }
    }
}

/// Remap cluster ids to a dense `0..k` range ordered by first appearance.
fn normalize(assign: &mut [usize], k: usize) {
    let mut remap = vec![usize::MAX; k];
    let mut next = 0;
    for a in assign.iter_mut() {
        if remap[*a] == usize::MAX {
            remap[*a] = next;
            next += 1;
        }
        *a = remap[*a];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tightly coupled quads with a weak bridge.
    fn two_communities() -> CommGraph {
        let mut g = CommGraph::empty(8);
        for group in [[0usize, 1, 2, 3], [4, 5, 6, 7]] {
            for &a in &group {
                for &b in &group {
                    if a != b {
                        g.add(a, b, 50);
                    }
                }
            }
        }
        g.add(3, 4, 1);
        g.add(4, 3, 1);
        g
    }

    #[test]
    fn finds_the_natural_communities() {
        let g = two_communities();
        let a = partition(&g, 2, &PartitionOpts::default());
        assert_eq!(a[0], a[1]);
        assert_eq!(a[0], a[3]);
        assert_eq!(a[4], a[7]);
        assert_ne!(a[0], a[4]);
        assert_eq!(g.cut_bytes(&a), 2);
    }

    #[test]
    fn beats_naive_blocks_on_interleaved_communities() {
        // Communities are {even ranks} and {odd ranks}: block clustering is
        // maximally wrong, the tool should find the interleaving.
        let mut g = CommGraph::empty(8);
        for a in 0..8usize {
            for b in 0..8usize {
                if a != b && a % 2 == b % 2 {
                    g.add(a, b, 10);
                }
            }
        }
        let blocks: Vec<usize> = (0..8).map(|r| r / 4).collect();
        let smart = partition(&g, 2, &PartitionOpts::default());
        assert!(g.cut_bytes(&smart) < g.cut_bytes(&blocks));
        assert_eq!(g.cut_bytes(&smart), 0);
    }

    #[test]
    fn respects_node_granularity() {
        let g = two_communities();
        let opts = PartitionOpts { node_size: 2, ..Default::default() };
        let a = partition(&g, 2, &opts);
        for node in 0..4 {
            assert_eq!(a[2 * node], a[2 * node + 1], "node {node} split");
        }
    }

    #[test]
    fn assignment_is_dense_and_deterministic() {
        let g = two_communities();
        let a1 = partition(&g, 4, &PartitionOpts::default());
        let a2 = partition(&g, 4, &PartitionOpts::default());
        assert_eq!(a1, a2);
        let mut ids = a1.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn k_equals_one_and_k_equals_n() {
        let g = two_communities();
        let single = partition(&g, 1, &PartitionOpts::default());
        assert!(single.iter().all(|&c| c == 0));
        let per_rank = partition(&g, 8, &PartitionOpts::default());
        let mut ids = per_rank.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 8);
    }

    #[test]
    fn minmax_objective_balances_logging() {
        // A hub rank talks to everyone: min-total may isolate it with a few
        // friends; min-max should spread the burden no worse.
        let mut g = CommGraph::empty(6);
        for i in 1..6 {
            g.add(0, i, 30);
            g.add(i, 0, 30);
        }
        g.add(1, 2, 5);
        g.add(3, 4, 5);
        let total = partition(&g, 3, &PartitionOpts::default());
        let minmax =
            partition(&g, 3, &PartitionOpts { objective: Objective::MinMax, ..Default::default() });
        let max_of = |a: &[usize]| g.logged_per_rank(a).into_iter().max().unwrap();
        assert!(max_of(&minmax) <= max_of(&total));
    }
}
